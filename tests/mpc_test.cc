// Tests for the MPC substrate: Shamir sharing, additive sharing, and the
// paper's §3 anonymous voting protocols (correctness + privacy).
#include <gtest/gtest.h>

#include "crypto/chacha20.h"
#include "mpc/shamir.h"
#include "mpc/voting.h"

namespace polysse {
namespace {

PrimeField F(uint64_t p) { return PrimeField::Create(p).value(); }

TEST(ShamirTest, CreateValidates) {
  PrimeField f = F(97);
  EXPECT_TRUE(ShamirScheme::Create(f, 3, 5).ok());
  EXPECT_FALSE(ShamirScheme::Create(f, 0, 5).ok());
  EXPECT_FALSE(ShamirScheme::Create(f, 6, 5).ok());
  EXPECT_FALSE(ShamirScheme::Create(F(5), 2, 5).ok());  // n >= p
}

TEST(ShamirTest, ShareReconstructRoundTrip) {
  PrimeField f = F(1000003);
  ChaChaRng rng = ChaChaRng::FromString("shamir");
  for (int t = 1; t <= 5; ++t) {
    ShamirScheme scheme = ShamirScheme::Create(f, t, 7).value();
    for (uint64_t secret : {0ull, 1ull, 999999ull, 123456ull}) {
      auto shares = scheme.Share(secret, rng);
      ASSERT_EQ(shares.size(), 7u);
      // Any t shares reconstruct (try a few subsets).
      std::vector<ShamirShare> subset(shares.begin(), shares.begin() + t);
      EXPECT_EQ(scheme.Reconstruct(subset).value(), secret);
      std::vector<ShamirShare> tail(shares.end() - t, shares.end());
      EXPECT_EQ(scheme.Reconstruct(tail).value(), secret);
      // All shares also reconstruct.
      EXPECT_EQ(scheme.Reconstruct(shares).value(), secret);
    }
  }
}

TEST(ShamirTest, TooFewSharesRejected) {
  PrimeField f = F(101);
  ShamirScheme scheme = ShamirScheme::Create(f, 3, 5).value();
  ChaChaRng rng = ChaChaRng::FromString("few");
  auto shares = scheme.Share(42, rng);
  std::vector<ShamirShare> two(shares.begin(), shares.begin() + 2);
  EXPECT_FALSE(scheme.Reconstruct(two).ok());
}

TEST(ShamirTest, DuplicateAndInvalidSharesRejected) {
  PrimeField f = F(101);
  ShamirScheme scheme = ShamirScheme::Create(f, 2, 4).value();
  ChaChaRng rng = ChaChaRng::FromString("dup");
  auto shares = scheme.Share(9, rng);
  EXPECT_FALSE(scheme.Reconstruct({shares[0], shares[0]}).ok());
  EXPECT_FALSE(scheme.Reconstruct({{0, 5}, shares[1]}).ok());
}

TEST(ShamirTest, ThresholdMinusOneSharesLookUniform) {
  // Statistical check: with t-1 shares, the induced distribution over a
  // fixed share coordinate is (near) uniform regardless of the secret.
  PrimeField f = F(11);
  ShamirScheme scheme = ShamirScheme::Create(f, 2, 3).value();
  ChaChaRng rng = ChaChaRng::FromString("hiding");
  std::vector<int> hist0(11, 0), hist7(11, 0);
  for (int i = 0; i < 4400; ++i) {
    ++hist0[scheme.Share(0, rng)[0].y];
    ++hist7[scheme.Share(7, rng)[0].y];
  }
  for (int v = 0; v < 11; ++v) {
    EXPECT_GT(hist0[v], 200);  // each residue ~400 expected
    EXPECT_GT(hist7[v], 200);
  }
}

TEST(ShamirTest, ReconstructCheckedDetectsBadShare) {
  PrimeField f = F(101);
  ShamirScheme scheme = ShamirScheme::Create(f, 2, 4).value();
  ChaChaRng rng = ChaChaRng::FromString("cheat");
  auto shares = scheme.Share(55, rng);
  EXPECT_EQ(scheme.ReconstructChecked(shares).value(), 55u);
  shares[3].y = f.Add(shares[3].y, 1);  // cheating party
  auto r = scheme.ReconstructChecked(shares);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kVerificationFailed);
}

TEST(ShamirTest, LinearityOfShares) {
  PrimeField f = F(1009);
  ShamirScheme scheme = ShamirScheme::Create(f, 3, 5).value();
  ChaChaRng rng = ChaChaRng::FromString("lin");
  auto sa = scheme.Share(100, rng);
  auto sb = scheme.Share(23, rng);
  std::vector<ShamirShare> sum(5);
  for (int i = 0; i < 5; ++i)
    sum[i] = scheme.AddShares(sa[i], sb[i]).value();
  EXPECT_EQ(scheme.Reconstruct(sum).value(), 123u);
  EXPECT_FALSE(scheme.AddShares(sa[0], sb[1]).ok());  // different x
}

TEST(ShamirTest, MultiplicationDoublesDegree) {
  PrimeField f = F(1009);
  // t=2 (degree 1); product has degree 2, needs 3 shares.
  ShamirScheme scheme = ShamirScheme::Create(f, 2, 5).value();
  ChaChaRng rng = ChaChaRng::FromString("mul");
  auto sa = scheme.Share(12, rng);
  auto sb = scheme.Share(34, rng);
  std::vector<ShamirShare> prod(5);
  for (int i = 0; i < 5; ++i)
    prod[i] = scheme.MulShares(sa[i], sb[i]).value();
  ShamirScheme wide = ShamirScheme::Create(f, 3, 5).value();
  EXPECT_EQ(wide.Reconstruct(prod).value(), 12u * 34u % 1009u);
}

TEST(AdditiveTest, SplitReconstruct) {
  PrimeField f = F(101);
  AdditiveSharing sharing(f);
  ChaChaRng rng = ChaChaRng::FromString("add");
  for (int n : {1, 2, 5, 10}) {
    for (uint64_t secret : {0ull, 1ull, 100ull}) {
      auto shares = sharing.Split(secret, n, rng);
      ASSERT_EQ(shares.size(), static_cast<size_t>(n));
      EXPECT_EQ(sharing.Reconstruct(shares), secret);
    }
  }
}

TEST(AdditiveTest, SharesChangeEachCall) {
  PrimeField f = F(1000003);
  AdditiveSharing sharing(f);
  ChaChaRng rng = ChaChaRng::FromString("fresh");
  auto s1 = sharing.Split(5, 2, rng);
  auto s2 = sharing.Split(5, 2, rng);
  EXPECT_NE(s1, s2);
}

// --------------------------------------------------------------- voting --

TEST(VotingTest, SumVoteTalliesCorrectly) {
  PrimeField f = F(101);
  ChaChaRng rng = ChaChaRng::FromString("vote");
  for (auto votes : std::vector<std::vector<uint64_t>>{
           {1, 0, 1, 1, 0}, {0, 0, 0}, {1, 1, 1, 1}, {1}}) {
    auto outcome = RunSumVote(f, votes, /*threshold=*/std::max<int>(1, votes.size() / 2), rng);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    uint64_t expected = 0;
    for (uint64_t v : votes) expected += v;
    EXPECT_EQ(outcome->tally, expected);
    if (votes.size() > 1) { EXPECT_GT(outcome->messages_sent, 0); }
  }
}

TEST(VotingTest, SumVoteRejectsInvalidVote) {
  PrimeField f = F(101);
  ChaChaRng rng = ChaChaRng::FromString("bad");
  EXPECT_FALSE(RunSumVote(f, {0, 2, 1}, 2, rng).ok());
  EXPECT_FALSE(RunSumVote(f, {}, 1, rng).ok());
}

TEST(VotingTest, VetoVoteSemantics) {
  PrimeField f = F(101);
  ChaChaRng rng = ChaChaRng::FromString("veto");
  // threshold 1 keeps product degree at 0 (k*(t-1) = 0 < n): allowed.
  auto pass = RunVetoVote(f, {1, 1, 1, 1}, 1, rng);
  ASSERT_TRUE(pass.ok()) << pass.status().ToString();
  EXPECT_EQ(pass->tally, 1u);  // nobody vetoed
  auto vetoed = RunVetoVote(f, {1, 0, 1, 1}, 1, rng);
  ASSERT_TRUE(vetoed.ok());
  EXPECT_EQ(vetoed->tally, 0u);
}

TEST(VotingTest, VetoVoteDegreeBudgetEnforced) {
  PrimeField f = F(101);
  ChaChaRng rng = ChaChaRng::FromString("deg");
  // 4 parties, threshold 2: product degree 4*(2-1) = 4 >= 4 parties.
  auto r = RunVetoVote(f, {1, 1, 1, 1}, 2, rng);
  EXPECT_FALSE(r.ok());
}

TEST(VotingTest, CoalitionBelowThresholdLearnsNothing) {
  // Exhaustive counting argument over a tiny field: a coalition of size
  // t-1 sees every candidate secret as exactly equally likely.
  PrimeField f = F(7);
  ChaChaRng rng = ChaChaRng::FromString("priv");
  EXPECT_FALSE(CoalitionLearnsAnyVote(f, {1, 0, 1}, /*threshold=*/2,
                                      /*coalition=*/{0}, rng));
  EXPECT_FALSE(CoalitionLearnsAnyVote(f, {1, 0, 1, 1}, /*threshold=*/3,
                                      /*coalition=*/{1, 2}, rng));
}

TEST(VotingTest, CoalitionAtThresholdLearns) {
  PrimeField f = F(7);
  ChaChaRng rng = ChaChaRng::FromString("priv2");
  EXPECT_TRUE(CoalitionLearnsAnyVote(f, {1, 0, 1}, /*threshold=*/2,
                                     /*coalition=*/{0, 1}, rng));
}

}  // namespace
}  // namespace polysse
