// Tests for the §4.2 share split: additivity (Figs. 3 & 4 invariant),
// seed-only re-derivation, hiding properties, multi-server splits.
#include <gtest/gtest.h>

#include "core/multi_server.h"
#include "core/sharing.h"
#include "xml/xml_generator.h"

namespace polysse {
namespace {

TagMap Fig1Map() { return TagMap::FromExplicit(Fig1TagMapping()).value(); }

TEST(SharingFpTest, Fig3Invariant_SharesSumToData) {
  // Fig. 3: "the sum of a polynomial at the client side with the
  // corresponding polynomial at the server side equals the original".
  FpCyclotomicRing ring = FpCyclotomicRing::Create(5).value();
  PolyTree<FpCyclotomicRing> data =
      BuildPolyTree(ring, Fig1Map(), MakeFig1Document()).value();
  DeterministicPrf prf = DeterministicPrf::FromString("fig3");
  SharedTrees<FpCyclotomicRing> shares = SplitShares(ring, data, prf);
  ASSERT_EQ(shares.client.size(), 5u);
  ASSERT_EQ(shares.server.size(), 5u);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_TRUE(ring.Equal(
        ring.Add(shares.client.nodes[i].poly, shares.server.nodes[i].poly),
        data.nodes[i].poly))
        << "node " << i;
    // Shares scrub plaintext.
    EXPECT_EQ(shares.client.nodes[i].tag_value, 0u);
    EXPECT_EQ(shares.server.nodes[i].tag_value, 0u);
  }
}

TEST(SharingZTest, Fig4Invariant_SharesSumToData) {
  ZQuotientRing ring = ZQuotientRing::Create(ZPoly({1, 0, 1})).value();
  PolyTree<ZQuotientRing> data =
      BuildPolyTree(ring, Fig1Map(), MakeFig1Document()).value();
  DeterministicPrf prf = DeterministicPrf::FromString("fig4");
  SharedTrees<ZQuotientRing> shares = SplitShares(ring, data, prf);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_TRUE(ring.Equal(
        ring.Add(shares.client.nodes[i].poly, shares.server.nodes[i].poly),
        data.nodes[i].poly))
        << "node " << i;
  }
  // The root must still sum to 265x + 45 (Fig. 2(b)/Fig. 4 invariant).
  EXPECT_EQ(ring.ToString(ring.Add(shares.client.nodes[0].poly,
                                   shares.server.nodes[0].poly)),
            "265x + 45");
}

TEST(SharingTest, SeedOnlyRederivationMatchesSplit) {
  // The thin client's re-derived share must equal the share produced at
  // split time — node by node, for both rings.
  XmlGeneratorOptions gen;
  gen.num_nodes = 40;
  gen.seed = 8;
  XmlNode doc = GenerateXmlTree(gen);
  DeterministicPrf prf = DeterministicPrf::FromString("seed-only");

  FpCyclotomicRing fp = FpCyclotomicRing::Create(13).value();
  TagMap::Options opt;
  opt.max_value = 11;
  TagMap map = TagMap::Build(doc.DistinctTags(), opt, prf).value();
  PolyTree<FpCyclotomicRing> data = BuildPolyTree(fp, map, doc).value();
  SharedTrees<FpCyclotomicRing> shares = SplitShares(fp, data, prf);
  for (const auto& node : shares.client.nodes) {
    EXPECT_TRUE(fp.Equal(DeriveClientShare(fp, prf, node.path, {}), node.poly));
  }

  ZQuotientRing zr = ZQuotientRing::Create(ZPoly({1, 0, 1})).value();
  TagMap::Options zopt;
  zopt.max_value = 60;
  TagMap zmap = TagMap::Build(doc.DistinctTags(), zopt, prf).value();
  PolyTree<ZQuotientRing> zdata = BuildPolyTree(zr, zmap, doc).value();
  ShareSplitOptions sso;
  sso.z_coeff_bits = 192;
  SharedTrees<ZQuotientRing> zshares = SplitShares(zr, zdata, prf, sso);
  for (const auto& node : zshares.client.nodes) {
    EXPECT_TRUE(
        zr.Equal(DeriveClientShare(zr, prf, node.path, sso), node.poly));
  }
}

TEST(SharingTest, DifferentSeedsGiveDifferentServerTrees) {
  FpCyclotomicRing ring = FpCyclotomicRing::Create(11).value();
  PolyTree<FpCyclotomicRing> data =
      BuildPolyTree(ring,
                    TagMap::FromExplicit({{"customers", 3}, {"client", 2},
                                          {"name", 4}})
                        .value(),
                    MakeFig1Document())
          .value();
  auto s1 = SplitShares(ring, data, DeterministicPrf::FromString("s1"));
  auto s2 = SplitShares(ring, data, DeterministicPrf::FromString("s2"));
  int diff = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    diff += !ring.Equal(s1.server.nodes[i].poly, s2.server.nodes[i].poly);
  }
  EXPECT_EQ(diff, static_cast<int>(data.size()));  // all differ w.h.p.
}

TEST(SharingFpTest, ServerShareDistributionIsUniformish) {
  // Perfect hiding: for fixed data, the server share is uniform because the
  // client share is. Chi-squared-lite: every field value appears in the
  // constant coefficient across many seeds.
  FpCyclotomicRing ring = FpCyclotomicRing::Create(7).value();
  PolyTree<FpCyclotomicRing> data =
      BuildPolyTree(ring, TagMap::FromExplicit({{"a", 3}}).value(),
                    XmlNode("a"))
          .value();
  std::vector<int> hist(7, 0);
  for (int seed = 0; seed < 700; ++seed) {
    // Built with += rather than "u" + to_string(...): the operator+
    // rvalue-insert path trips a GCC 12 -Wrestrict false positive at -O3.
    std::string label = "u";
    label += std::to_string(seed);
    auto shares =
        SplitShares(ring, data, DeterministicPrf::FromString(label));
    ++hist[shares.server.nodes[0].poly.coeff(0)];
  }
  for (int v = 0; v < 7; ++v) EXPECT_GT(hist[v], 40) << "value " << v;
}

TEST(SharingZTest, CoeffBitsControlShareWidth) {
  ZQuotientRing ring = ZQuotientRing::Create(ZPoly({1, 0, 1})).value();
  DeterministicPrf prf = DeterministicPrf::FromString("width");
  ShareSplitOptions narrow;
  narrow.z_coeff_bits = 64;
  ShareSplitOptions wide;
  wide.z_coeff_bits = 512;
  ZPoly n = DeriveClientShare(ring, prf, "0", narrow);
  ZPoly w = DeriveClientShare(ring, prf, "0", wide);
  EXPECT_LE(n.MaxCoeffBits(), 64u);
  EXPECT_GT(w.MaxCoeffBits(), 256u);
}

TEST(MultiServerTest, AdditiveKServerSplitSums) {
  FpCyclotomicRing ring = FpCyclotomicRing::Create(11).value();
  XmlGeneratorOptions gen;
  gen.num_nodes = 25;
  gen.tag_alphabet = 8;  // must fit into {1..9} = {1..p-2}
  gen.seed = 15;
  XmlNode doc = GenerateXmlTree(gen);
  TagMap::Options opt;
  opt.max_value = 9;
  DeterministicPrf prf = DeterministicPrf::FromString("kserver");
  TagMap map = TagMap::Build(doc.DistinctTags(), opt, prf).value();
  PolyTree<FpCyclotomicRing> data = BuildPolyTree(ring, map, doc).value();

  for (int k : {1, 2, 4}) {
    auto servers = SplitSharesAcrossServers(ring, data, prf, k).value();
    ASSERT_EQ(servers.size(), static_cast<size_t>(k));
    for (size_t i = 0; i < data.size(); ++i) {
      FpPoly sum = DeriveClientShare(ring, prf, data.nodes[i].path, {});
      for (int s = 0; s < k; ++s) sum = ring.Add(sum, servers[s].nodes[i].poly);
      EXPECT_TRUE(ring.Equal(sum, data.nodes[i].poly)) << "k=" << k;
    }
    // Evaluation combining helper agrees.
    for (uint64_t e = 1; e <= 9; ++e) {
      std::vector<uint64_t> evals;
      for (int s = 0; s < k; ++s)
        evals.push_back(ring.EvalAt(servers[s].nodes[0].poly, e).value());
      uint64_t client_eval =
          ring.EvalAt(DeriveClientShare(ring, prf, "", {}), e).value();
      EXPECT_EQ(CombineAdditiveEvals(11, client_eval, evals),
                ring.EvalAt(data.nodes[0].poly, e).value());
    }
  }
}

TEST(MultiServerTest, ShamirTOfNReconstructsEvaluations) {
  FpCyclotomicRing ring = FpCyclotomicRing::Create(101).value();
  XmlGeneratorOptions gen;
  gen.num_nodes = 15;
  gen.seed = 16;
  XmlNode doc = GenerateXmlTree(gen);
  TagMap::Options opt;
  opt.max_value = 99;
  DeterministicPrf prf = DeterministicPrf::FromString("shamir-ms");
  TagMap map = TagMap::Build(doc.DistinctTags(), opt, prf).value();
  PolyTree<FpCyclotomicRing> data = BuildPolyTree(ring, map, doc).value();

  ChaChaRng rng = ChaChaRng::FromString("shamir-ms-rng");
  ShamirMultiServer ms = ShamirMultiServer::Setup(ring, data, 3, 5, rng).value();
  for (int node = 0; node < static_cast<int>(data.size()); ++node) {
    for (uint64_t e : {1ull, 7ull, 50ull}) {
      EXPECT_EQ(ms.Eval(node, e).value(),
                ring.EvalAt(data.nodes[node].poly, e).value());
    }
  }
  // Any 3 of 5 servers suffice.
  std::vector<int> ids = {1, 3, 4};
  std::vector<uint64_t> evals;
  for (int s : ids) evals.push_back(ms.ServerEval(s, 0, 7).value());
  EXPECT_EQ(ms.CombineEvals(ids, evals).value(),
            ring.EvalAt(data.nodes[0].poly, 7).value());
}

TEST(MultiServerTest, ShamirValidation) {
  FpCyclotomicRing ring = FpCyclotomicRing::Create(11).value();
  PolyTree<FpCyclotomicRing> data =
      BuildPolyTree(ring, TagMap::FromExplicit({{"a", 3}}).value(),
                    XmlNode("a"))
          .value();
  ChaChaRng rng = ChaChaRng::FromString("v");
  EXPECT_FALSE(ShamirMultiServer::Setup(ring, data, 6, 5, rng).ok());
  ShamirMultiServer ms = ShamirMultiServer::Setup(ring, data, 2, 3, rng).value();
  EXPECT_FALSE(ms.ServerEval(5, 0, 1).ok());
  EXPECT_FALSE(ms.ServerEval(0, 9, 1).ok());
  EXPECT_FALSE(ms.CombineEvals({0}, {1, 2}).ok());
}

}  // namespace
}  // namespace polysse
