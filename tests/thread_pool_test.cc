// Unit tests of the execution seam: Future/Promise handoff, ThreadPool
// Submit/ParallelFor (including nesting and caller participation), and the
// inline executor's deterministic ordering.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "util/status.h"
#include "util/thread_pool.h"

namespace polysse {
namespace {

TEST(ThreadPoolTest, SubmitReturnsValueThroughFuture) {
  ThreadPool pool(4);
  Future<int> f = pool.Submit([] { return 41 + 1; });
  EXPECT_EQ(f.Get(), 42);
}

TEST(ThreadPoolTest, SubmitResultCarriesStatus) {
  // The library's convention: tasks report failure through Result, never
  // exceptions.
  ThreadPool pool(2);
  auto ok = pool.Submit([]() -> Result<int> { return 7; });
  auto bad = pool.Submit(
      []() -> Result<int> { return Status::Unavailable("down"); });
  Result<int> ok_v = ok.Get();
  Result<int> bad_v = bad.Get();
  ASSERT_TRUE(ok_v.ok());
  EXPECT_EQ(*ok_v, 7);
  ASSERT_FALSE(bad_v.ok());
  EXPECT_EQ(bad_v.status().code(), StatusCode::kUnavailable);
}

TEST(ThreadPoolTest, ManySubmissionsAllComplete) {
  ThreadPool pool(8);
  std::vector<Future<size_t>> futures;
  futures.reserve(500);
  for (size_t i = 0; i < 500; ++i)
    futures.push_back(pool.Submit([i] { return i * i; }));
  for (size_t i = 0; i < 500; ++i) EXPECT_EQ(futures[i].Get(), i * i);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (size_t n : {0u, 1u, 3u, 64u, 1000u}) {
    std::vector<std::atomic<int>> hits(n);
    pool.ParallelFor(n, [&](size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, ParallelForActuallyOverlaps) {
  // 4 workers x 4 sleeping tasks of 20 ms: wall time far below the 80 ms a
  // sequential run would need (generous margin for loaded CI machines).
  ThreadPool pool(4);
  const auto start = std::chrono::steady_clock::now();
  pool.ParallelFor(4, [](size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  });
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  EXPECT_LT(ms, 70.0) << "4x20ms tasks on 4 threads should overlap";
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // Outer iterations issue inner ParallelFors from worker threads; the
  // caller-participation design must keep making progress even when every
  // worker is occupied by an outer iteration.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPoolTest, InlineExecutorRunsInOrderOnCallerThread) {
  InlineExecutor inline_exec;
  std::vector<size_t> order;
  const std::thread::id self = std::this_thread::get_id();
  inline_exec.ParallelFor(5, [&](size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), self);
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(inline_exec.concurrency(), 1u);
  EXPECT_EQ(GlobalInlineExecutor()->concurrency(), 1u);
}

TEST(ThreadPoolTest, ConcurrencyReportsThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.concurrency(), 3u);
  ThreadPool clamped(0);  // clamps to one worker rather than zero
  EXPECT_EQ(clamped.concurrency(), 1u);
  Future<int> f = clamped.Submit([] { return 1; });
  EXPECT_EQ(f.Get(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedWork) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i)
      pool.Submit([&ran] {
        ran.fetch_add(1, std::memory_order_relaxed);
        return 0;
      });
  }  // destructor joins; queued tasks must all have run
  EXPECT_EQ(ran.load(), 64);
}

}  // namespace
}  // namespace polysse
