// Golden vectors from the paper's worked example: the Fig. 1 document
// ("customers(client(name), client(name))" with mapping order=1, client=2,
// customers=3, name=4), its Fig. 2 reductions into both quotient rings, the
// Fig. 6 evaluation column, and the Theorem 1/2 reconstructions of every
// node. These pin exact printed values so algebra refactors cannot silently
// drift; any intentional change to the representation must update this file
// against the paper, not against the code. Every assertion runs under BOTH
// the reference kernels and the Montgomery/Karatsuba fast path (see
// ForBothArithPaths), so an optimization cannot change semantics without
// tripping the paper's own numbers.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/poly_tree.h"
#include "core/tag_map.h"
#include "ring/fp_cyclotomic_ring.h"
#include "ring/z_quotient_ring.h"
#include "testing/mul_path_guards.h"
#include "testing/share_roundtrip.h"
#include "xml/xml_generator.h"

namespace polysse {
namespace {

// Preorder layout of MakeFig1Document(): 0 customers, 1 client, 2 name,
// 3 client, 4 name.
constexpr int kCustomers = 0;
constexpr int kClientA = 1;
constexpr int kNameA = 2;
constexpr int kClientB = 3;
constexpr int kNameB = 4;

TagMap Fig1Map() { return TagMap::FromExplicit(Fig1TagMapping()).value(); }

// Every golden assertion runs under EVERY multiplication path — the plain
// reference kernels, Karatsuba forced directly, and the full fast path with
// each crossover forced to 1 so even the tiny Fig. 1 polynomials take first
// the Karatsuba and then the NTT branch (p = 5 is NTT-friendly: 5-1 = 2^2).
// An optimization that silently changes semantics fails here against the
// paper's printed values, not against other code.
template <typename Fn>
void ForBothArithPaths(Fn&& check) {
  {
    SCOPED_TRACE("reference path");
    testing::ScopedFpMulPath fp(FpMulPath::kReference);
    testing::ScopedZMulPath z(ZMulPath::kReference);
    check();
  }
  {
    SCOPED_TRACE("Karatsuba path (forced directly)");
    testing::ScopedFpMulPath fp(FpMulPath::kKaratsuba);
    testing::ScopedZMulPath z(ZMulPath::kFast);
    testing::ScopedFpKaratsubaThreshold fp_t(1);
    testing::ScopedZKaratsubaThreshold z_t(1);
    check();
  }
  {
    SCOPED_TRACE("fast path (Karatsuba crossover forced to 1, NTT off)");
    testing::ScopedFpMulPath fp(FpMulPath::kFast);
    testing::ScopedZMulPath z(ZMulPath::kFast);
    testing::ScopedFpKaratsubaThreshold fp_t(1);
    testing::ScopedFpNttThreshold ntt_t(~size_t{0});
    testing::ScopedZKaratsubaThreshold z_t(1);
    check();
  }
  {
    SCOPED_TRACE("fast path (NTT crossover forced to 1)");
    testing::ScopedFpMulPath fp(FpMulPath::kFast);
    testing::ScopedZMulPath z(ZMulPath::kFast);
    testing::ScopedFpNttThreshold ntt_t(1);
    testing::ScopedZKaratsubaThreshold z_t(1);
    check();
  }
}

TEST(GoldenFig2Test, FpRingTreeMatchesFig2a) {
  // Fig. 2(a): reduction in F_5[x]/(x^4 - 1).
  ForBothArithPaths([] {
    FpCyclotomicRing ring = FpCyclotomicRing::Create(5).value();
    PolyTree<FpCyclotomicRing> tree =
        BuildPolyTree(ring, Fig1Map(), MakeFig1Document()).value();
    ASSERT_EQ(tree.size(), 5u);

    EXPECT_EQ(ring.ToString(tree.nodes[kNameA].poly), "x + 1");
    EXPECT_EQ(ring.ToString(tree.nodes[kNameB].poly), "x + 1");
    EXPECT_EQ(ring.ToString(tree.nodes[kClientA].poly), "x^2 + 4x + 3");
    EXPECT_EQ(ring.ToString(tree.nodes[kClientB].poly), "x^2 + 4x + 3");
    EXPECT_EQ(ring.ToString(tree.nodes[kCustomers].poly),
              "3x^3 + 3x^2 + 3x + 3");
  });
}

TEST(GoldenFig2Test, ZRingTreeMatchesFig2b) {
  // Fig. 2(b): reduction in Z[x]/(x^2 + 1).
  ForBothArithPaths([] {
    ZQuotientRing ring = ZQuotientRing::Create(ZPoly({1, 0, 1})).value();
    PolyTree<ZQuotientRing> tree =
        BuildPolyTree(ring, Fig1Map(), MakeFig1Document()).value();
    ASSERT_EQ(tree.size(), 5u);

    EXPECT_EQ(ring.ToString(tree.nodes[kNameA].poly), "x - 4");
    EXPECT_EQ(ring.ToString(tree.nodes[kClientA].poly), "-6x + 7");
    EXPECT_EQ(ring.ToString(tree.nodes[kCustomers].poly), "265x + 45");
  });
}

TEST(GoldenFig2Test, UnreducedFig1cDegreesEqualSubtreeSizes) {
  // Fig. 1(c): before reduction, a node's plain Z[x] product has degree
  // equal to its subtree size.
  ForBothArithPaths([] {
    UnreducedPolyTree tree =
        BuildUnreducedPolyTree(Fig1Map(), MakeFig1Document()).value();
    ASSERT_EQ(tree.size(), 5u);
    EXPECT_EQ(tree.nodes[kCustomers].poly.degree(), 5);
    EXPECT_EQ(tree.nodes[kClientA].poly.degree(), 2);
    EXPECT_EQ(tree.nodes[kNameA].poly.degree(), 1);
    // (x-4)(x-2)(x-4)(x-2)(x-3) evaluated outside its roots is nonzero.
    EXPECT_NE(tree.nodes[kCustomers].poly.Eval(1), BigInt(0));
    EXPECT_EQ(tree.nodes[kCustomers].poly.Eval(2), BigInt(0));
    EXPECT_EQ(tree.nodes[kCustomers].poly.Eval(3), BigInt(0));
    EXPECT_EQ(tree.nodes[kCustomers].poly.Eval(4), BigInt(0));
  });
}

TEST(GoldenFig6Test, ZRingEvaluationColumnAtE2) {
  // Fig. 6: querying name (e = map(name)... the figure queries with e = 2,
  // i.e. //client): "everything is calculated modulo r(2) = 5"; the sum
  // tree shows name -> 3, client -> 0, customers -> 0.
  ForBothArithPaths([] {
    ZQuotientRing ring = ZQuotientRing::Create(ZPoly({1, 0, 1})).value();
    PolyTree<ZQuotientRing> tree =
        BuildPolyTree(ring, Fig1Map(), MakeFig1Document()).value();
    ASSERT_EQ(ring.QueryModulus(2).value(), 5u);
    EXPECT_EQ(ring.EvalAt(tree.nodes[kNameA].poly, 2).value(), 3u);
    EXPECT_EQ(ring.EvalAt(tree.nodes[kClientA].poly, 2).value(), 0u);
    EXPECT_EQ(ring.EvalAt(tree.nodes[kCustomers].poly, 2).value(), 0u);
  });
}

TEST(GoldenFig6Test, FpRingEvaluationColumnAtE2) {
  // Same query in F_5[x]/(x^4-1): evaluation happens mod p = 5 and the
  // client/customers rows still vanish at e = map(client) = 2 while the
  // name leaves do not (4 - 2 = 2 mod 5).
  ForBothArithPaths([] {
    FpCyclotomicRing ring = FpCyclotomicRing::Create(5).value();
    PolyTree<FpCyclotomicRing> tree =
        BuildPolyTree(ring, Fig1Map(), MakeFig1Document()).value();
    ASSERT_EQ(ring.QueryModulus(2).value(), 5u);
    EXPECT_EQ(ring.EvalAt(tree.nodes[kNameA].poly, 2).value(), 3u);
    EXPECT_EQ(ring.EvalAt(tree.nodes[kClientA].poly, 2).value(), 0u);
    EXPECT_EQ(ring.EvalAt(tree.nodes[kCustomers].poly, 2).value(), 0u);
  });
}

TEST(GoldenTheoremTest, Theorem1ReconstructsEveryFig1NodeInFp) {
  ForBothArithPaths([] {
    FpCyclotomicRing ring = FpCyclotomicRing::Create(5).value();
    PolyTree<FpCyclotomicRing> tree =
        BuildPolyTree(ring, Fig1Map(), MakeFig1Document()).value();
    const std::vector<uint64_t> want = {3, 2, 4, 2, 4};  // preorder tags
    for (int id = 0; id < 5; ++id) {
      auto t = RecoverTagValue(ring, tree, id);
      ASSERT_TRUE(t.ok()) << "node " << id << ": " << t.status().ToString();
      EXPECT_EQ(*t, want[id]) << "node " << id;
      EXPECT_EQ(*t, tree.nodes[id].tag_value) << "node " << id;
    }
  });
}

TEST(GoldenTheoremTest, Theorem2ReconstructsEveryFig1NodeInZ) {
  ForBothArithPaths([] {
    ZQuotientRing ring = ZQuotientRing::Create(ZPoly({1, 0, 1})).value();
    PolyTree<ZQuotientRing> tree =
        BuildPolyTree(ring, Fig1Map(), MakeFig1Document()).value();
    const std::vector<uint64_t> want = {3, 2, 4, 2, 4};
    for (int id = 0; id < 5; ++id) {
      auto t = RecoverTagValue(ring, tree, id);
      ASSERT_TRUE(t.ok()) << "node " << id << ": " << t.status().ToString();
      EXPECT_EQ(*t, want[id]) << "node " << id;
    }
  });
}

TEST(GoldenTheoremTest, ShareSplitRoundTripsOnFig1InBothRings) {
  // §4.2 on the worked example: splitting the Fig. 2 trees into client +
  // server shares loses nothing — reconstruction and Theorems 1/2 still
  // yield the golden tags.
  ForBothArithPaths([] {
    DeterministicPrf prf = DeterministicPrf::FromString("golden-fig1");
    FpCyclotomicRing fp = FpCyclotomicRing::Create(5).value();
    EXPECT_TRUE(
        testing::ShareRoundtripOk(fp, Fig1Map(), MakeFig1Document(), prf));
    ZQuotientRing z = ZQuotientRing::Create(ZPoly({1, 0, 1})).value();
    EXPECT_TRUE(
        testing::ShareRoundtripOk(z, Fig1Map(), MakeFig1Document(), prf));
  });
}

}  // namespace
}  // namespace polysse
