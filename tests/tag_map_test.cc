// Tests for the private tag mapping (§4.1 Fig. 1(b)).
#include <gtest/gtest.h>

#include "core/tag_map.h"
#include "xml/xml_generator.h"

namespace polysse {
namespace {

DeterministicPrf Prf() { return DeterministicPrf::FromString("tagmap-test"); }

TEST(TagMapTest, Fig1ExplicitMapping) {
  TagMap map = TagMap::FromExplicit(Fig1TagMapping()).value();
  EXPECT_EQ(map.Value("order").value(), 1u);
  EXPECT_EQ(map.Value("client").value(), 2u);
  EXPECT_EQ(map.Value("customers").value(), 3u);
  EXPECT_EQ(map.Value("name").value(), 4u);
  EXPECT_EQ(map.Tag(2).value(), "client");
  EXPECT_EQ(map.size(), 4u);
  EXPECT_EQ(map.max_value(), 4u);
}

TEST(TagMapTest, UnknownTagIsNotFound) {
  TagMap map = TagMap::FromExplicit(Fig1TagMapping()).value();
  EXPECT_EQ(map.Value("absent").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(map.Tag(99).status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(map.Contains("absent"));
  EXPECT_TRUE(map.Contains("client"));
}

TEST(TagMapTest, ExplicitRejectsDuplicatesAndZero) {
  EXPECT_FALSE(TagMap::FromExplicit({{"a", 1}, {"a", 2}}).ok());
  EXPECT_FALSE(TagMap::FromExplicit({{"a", 1}, {"b", 1}}).ok());
  EXPECT_FALSE(TagMap::FromExplicit({{"a", 0}}).ok());
}

TEST(TagMapTest, KeyedRandomIsInjectiveAndDeterministic) {
  std::vector<std::string> tags;
  for (int i = 0; i < 50; ++i) {
    // Built with += rather than "t" + to_string(...): the operator+
    // rvalue-insert path trips a GCC 12 -Wrestrict false positive at -O3.
    std::string tag = "t";
    tag += std::to_string(i);
    tags.push_back(tag);
  }
  TagMap::Options opt;
  opt.max_value = 99;
  TagMap a = TagMap::Build(tags, opt, Prf()).value();
  TagMap b = TagMap::Build(tags, opt, Prf()).value();
  std::set<uint64_t> values;
  for (const auto& tag : tags) {
    uint64_t v = a.Value(tag).value();
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 99u);
    EXPECT_TRUE(values.insert(v).second) << "duplicate value " << v;
    EXPECT_EQ(b.Value(tag).value(), v);  // same PRF -> same map
  }
  // A different seed should give a different assignment (w.h.p.).
  TagMap c =
      TagMap::Build(tags, opt, DeterministicPrf::FromString("other")).value();
  int diffs = 0;
  for (const auto& tag : tags) diffs += c.Value(tag).value() != a.Value(tag).value();
  EXPECT_GT(diffs, 10);
}

TEST(TagMapTest, SequentialAssignment) {
  TagMap::Options opt;
  opt.max_value = 10;
  opt.assignment = TagMap::Options::Assignment::kSequential;
  TagMap map = TagMap::Build({"x", "y", "z"}, opt, Prf()).value();
  EXPECT_EQ(map.Value("x").value(), 1u);
  EXPECT_EQ(map.Value("y").value(), 2u);
  EXPECT_EQ(map.Value("z").value(), 3u);
}

TEST(TagMapTest, AllowedValuesWhitelist) {
  TagMap::Options opt;
  opt.allowed_values = {4, 6, 10};
  TagMap map = TagMap::Build({"a", "b", "c"}, opt, Prf()).value();
  for (const char* t : {"a", "b", "c"}) {
    uint64_t v = map.Value(t).value();
    EXPECT_TRUE(v == 4 || v == 6 || v == 10) << v;
  }
}

TEST(TagMapTest, CapacityEnforced) {
  TagMap::Options opt;
  opt.max_value = 2;
  EXPECT_FALSE(TagMap::Build({"a", "b", "c"}, opt, Prf()).ok());
  opt.max_value = 3;
  EXPECT_TRUE(TagMap::Build({"a", "b", "c"}, opt, Prf()).ok());
  TagMap::Options wl;
  wl.allowed_values = {5};
  EXPECT_FALSE(TagMap::Build({"a", "b"}, wl, Prf()).ok());
}

TEST(TagMapTest, BuildRejectsDuplicateTags) {
  TagMap::Options opt;
  opt.max_value = 100;
  EXPECT_FALSE(TagMap::Build({"a", "a"}, opt, Prf()).ok());
}

TEST(TagMapTest, EntriesSortedByValue) {
  TagMap map = TagMap::FromExplicit({{"z", 3}, {"a", 1}, {"m", 2}}).value();
  auto entries = map.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].first, "a");
  EXPECT_EQ(entries[1].first, "m");
  EXPECT_EQ(entries[2].first, "z");
}

TEST(TagMapTest, SerializeRoundTrip) {
  std::vector<std::string> tags = {"alpha", "beta", "gamma", "delta"};
  TagMap::Options opt;
  opt.max_value = 1000;
  TagMap map = TagMap::Build(tags, opt, Prf()).value();
  ByteWriter w;
  map.Serialize(&w);
  ByteReader r(w.span());
  TagMap back = TagMap::Deserialize(&r).value();
  EXPECT_EQ(back.size(), map.size());
  EXPECT_EQ(back.max_value(), map.max_value());
  for (const auto& t : tags)
    EXPECT_EQ(back.Value(t).value(), map.Value(t).value());
  EXPECT_EQ(map.SerializedSize(), w.size());
}

TEST(TagMapTest, DeserializeRejectsCorruption) {
  ByteWriter w;
  w.PutVarint64(10);  // max_value
  w.PutVarint64(2);   // two entries
  w.PutLengthPrefixedString("a");
  w.PutVarint64(0);  // zero value: invalid
  ByteReader r(w.span());
  EXPECT_FALSE(TagMap::Deserialize(&r).ok());
}

}  // namespace
}  // namespace polysse
