// End-to-end tests of the polysse::Engine facade and the transport-
// abstracted query stack:
//  * every verify mode × {2-party, additive k-server, Shamir t-of-n} runs
//    through ServerEndpoints with answers identical to the pre-redesign
//    2-party path;
//  * batched RunQueries issues strictly fewer EvalRequests than running
//    the same queries sequentially (asserted via server Stats);
//  * a FaultInjectingEndpoint cheating server is rejected end-to-end by
//    kVerified;
//  * Shamir deployments fail over dead servers and refuse cleanly below
//    the threshold;
//  * Save/Open round-trips two-party AND multi-server (additive, Shamir)
//    deployments through the persistence layer;
//  * the pooled fan-out executor returns answers bit-identical to inline
//    sequential dispatch.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.h"
#include "testing/deploy_helpers.h"
#include "testing/query_helpers.h"
#include "xml/xml_generator.h"

namespace polysse {
namespace {

using testing::FpDeployment;
using testing::ZDeployment;
using testing::MakeFpDeployment;
using testing::MakeZDeployment;
using testing::TestSession;

using testing::Sorted;
using testing::SortedMatchPaths;

XmlNode MakeDoc(uint64_t seed, size_t num_nodes = 80, size_t alphabet = 8) {
  XmlGeneratorOptions gen;
  gen.num_nodes = num_nodes;
  gen.tag_alphabet = alphabet;
  gen.max_fanout = 4;
  gen.seed = seed;
  return GenerateXmlTree(gen);
}

constexpr VerifyMode kAllModes[] = {VerifyMode::kOptimistic,
                                    VerifyMode::kVerified,
                                    VerifyMode::kTrustedConstOnly};

/// Pre-redesign oracle: a 2-party QuerySession wired straight over a
/// ServerStore through one loopback endpoint (the historical
/// serialize-every-message behavior, bit for bit).
template <typename Ring, typename Deployment>
std::vector<LookupResult> LegacyAnswers(Deployment& dep,
                                        const std::vector<std::string>& tags,
                                        VerifyMode mode) {
  TestSession<Ring> session(&dep.client, &dep.server);
  std::vector<LookupResult> out;
  for (const std::string& tag : tags)
    out.push_back(session.Lookup(tag, mode).value());
  return out;
}

template <typename EnginePtr>
void ExpectSameAnswers(EnginePtr& engine,
                       const std::vector<std::string>& tags, VerifyMode mode,
                       const std::vector<LookupResult>& oracle,
                       const char* label) {
  for (size_t i = 0; i < tags.size(); ++i) {
    auto r = engine->Lookup(tags[i], mode);
    ASSERT_TRUE(r.ok()) << label << " //" << tags[i] << ": "
                        << r.status().ToString();
    EXPECT_EQ(SortedMatchPaths(r->matches), SortedMatchPaths(oracle[i].matches))
        << label << " //" << tags[i] << " mode " << static_cast<int>(mode);
    EXPECT_EQ(SortedMatchPaths(r->possible),
              SortedMatchPaths(oracle[i].possible))
        << label << " //" << tags[i] << " mode " << static_cast<int>(mode);
  }
}

TEST(EngineTest, FpAllSchemesMatchPreRedesignAnswers) {
  XmlNode doc = MakeDoc(71);
  DeterministicPrf seed = DeterministicPrf::FromString("engine-fp");
  FpDeployment legacy = MakeFpDeployment(doc, seed).value();
  const std::vector<std::string> tags = doc.DistinctTags();

  struct Case {
    const char* label;
    FpEngine::Deploy deploy;
  };
  std::vector<Case> cases;
  cases.push_back({"2party-loopback", {}});
  Case inproc{"2party-inprocess", {}};
  inproc.deploy.transport = EndpointKind::kInProcess;
  cases.push_back(inproc);
  Case additive{"additive-3", {}};
  additive.deploy.scheme = ShareScheme::kAdditive;
  additive.deploy.num_servers = 3;
  cases.push_back(additive);
  Case shamir{"shamir-3of5", {}};
  shamir.deploy.scheme = ShareScheme::kShamir;
  shamir.deploy.num_servers = 5;
  shamir.deploy.threshold = 3;
  cases.push_back(shamir);

  for (const Case& c : cases) {
    auto engine = FpEngine::Outsource(doc, seed, c.deploy);
    ASSERT_TRUE(engine.ok()) << c.label << ": " << engine.status().ToString();
    for (VerifyMode mode : kAllModes) {
      auto oracle = LegacyAnswers<FpCyclotomicRing>(legacy, tags, mode);
      ExpectSameAnswers(*engine, tags, mode, oracle, c.label);
    }
  }
}

TEST(EngineTest, ZBothSchemesMatchPreRedesignAnswers) {
  XmlNode doc = MakeDoc(72, 40, 5);
  DeterministicPrf seed = DeterministicPrf::FromString("engine-z");
  ZDeployment legacy = MakeZDeployment(doc, seed).value();
  const std::vector<std::string> tags = doc.DistinctTags();

  for (int k : {1, 3}) {
    ZEngine::Deploy deploy;
    deploy.scheme = k == 1 ? ShareScheme::kTwoParty : ShareScheme::kAdditive;
    deploy.num_servers = k;
    auto engine = ZEngine::Outsource(doc, seed, deploy);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    for (VerifyMode mode : kAllModes) {
      auto oracle = LegacyAnswers<ZQuotientRing>(legacy, tags, mode);
      ExpectSameAnswers(*engine, tags, mode, oracle,
                        k == 1 ? "z-2party" : "z-additive-3");
    }
  }
}

TEST(EngineTest, ShamirRequiresFpRing) {
  XmlNode doc = MakeDoc(73, 20, 4);
  DeterministicPrf seed = DeterministicPrf::FromString("engine-z-shamir");
  ZEngine::Deploy deploy;
  deploy.scheme = ShareScheme::kShamir;
  deploy.num_servers = 3;
  deploy.threshold = 2;
  auto engine = ZEngine::Outsource(doc, seed, deploy);
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kUnimplemented);
}

TEST(EngineTest, TwoPartyLoopbackPreservesWireCosts) {
  // The facade's default transport is the historical serialize-everything
  // path: byte counters must equal the legacy session's exactly.
  XmlNode doc = MakeDoc(74);
  DeterministicPrf seed = DeterministicPrf::FromString("engine-bytes");
  FpDeployment legacy = MakeFpDeployment(doc, seed).value();
  TestSession<FpCyclotomicRing> session(&legacy.client, &legacy.server);
  auto engine = FpEngine::Outsource(doc, seed).value();

  for (const std::string& tag : doc.DistinctTags()) {
    auto l = session.Lookup(tag, VerifyMode::kVerified).value();
    auto e = engine->Lookup(tag, VerifyMode::kVerified).value();
    EXPECT_EQ(l.stats.transport.bytes_up, e.stats.transport.bytes_up) << tag;
    EXPECT_EQ(l.stats.transport.bytes_down, e.stats.transport.bytes_down)
        << tag;
    EXPECT_EQ(l.stats.rounds, e.stats.rounds) << tag;
    EXPECT_EQ(l.stats.server_evals, e.stats.server_evals) << tag;
  }
}

TEST(EngineTest, BatchedRunQueriesIssuesFewerEvalRequests) {
  XmlNode doc = MakeDoc(75, 300, 20);
  DeterministicPrf seed = DeterministicPrf::FromString("engine-batch");
  auto engine = FpEngine::Outsource(doc, seed).value();

  std::vector<std::string> tags = doc.DistinctTags();
  ASSERT_GE(tags.size(), 8u);
  std::vector<Query> queries;
  for (size_t i = 0; i < 16; ++i)
    queries.push_back({tags[i % tags.size()], VerifyMode::kVerified});

  // Sequential: 16 independent pruned walks.
  const auto before_seq = engine->store().stats();
  std::vector<LookupResult> sequential;
  for (const Query& q : queries)
    sequential.push_back(engine->Lookup(q.tag, q.mode).value());
  const size_t seq_requests =
      engine->store().stats().eval_requests - before_seq.eval_requests;

  // Batched: one shared walk answering all 16 at once.
  const auto before_batch = engine->store().stats();
  auto batched = engine->RunQueries(queries).value();
  const size_t batch_requests =
      engine->store().stats().eval_requests - before_batch.eval_requests;

  EXPECT_LT(batch_requests, seq_requests)
      << "batching must coalesce BFS rounds into shared EvalRequests";
  ASSERT_EQ(batched.per_tag.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(SortedMatchPaths(batched.per_tag[i].matches),
              SortedMatchPaths(sequential[i].matches))
        << "//" << queries[i].tag;
  }
}

TEST(EngineTest, BatchedQueriesHonorPerQueryModes) {
  XmlNode doc = MakeDoc(76, 120, 10);
  DeterministicPrf seed = DeterministicPrf::FromString("engine-modes");
  auto engine = FpEngine::Outsource(doc, seed).value();
  std::vector<std::string> tags = doc.DistinctTags();

  std::vector<Query> queries;
  for (size_t i = 0; i < tags.size(); ++i)
    queries.push_back({tags[i], kAllModes[i % 3]});
  auto batched = engine->RunQueries(queries).value();
  for (size_t i = 0; i < queries.size(); ++i) {
    auto solo = engine->Lookup(queries[i].tag, queries[i].mode).value();
    EXPECT_EQ(SortedMatchPaths(batched.per_tag[i].matches),
              SortedMatchPaths(solo.matches))
        << "//" << queries[i].tag;
    EXPECT_EQ(SortedMatchPaths(batched.per_tag[i].possible),
              SortedMatchPaths(solo.possible))
        << "//" << queries[i].tag;
  }
}

TEST(EngineTest, VerifiedModeRejectsCheatingServerThroughEndpoints) {
  XmlNode doc = MakeDoc(77);
  DeterministicPrf seed = DeterministicPrf::FromString("engine-cheat");
  auto engine = FpEngine::Outsource(doc, seed).value();
  const std::string tag = doc.DistinctTags()[1];
  auto honest = engine->Lookup(tag, VerifyMode::kVerified).value();
  ASSERT_FALSE(honest.matches.empty());
  const int32_t victim = honest.matches[0].node_id;
  const uint64_t e = engine->client().tag_map().Value(tag).value();

  // The cheating server rewrites the victim's fetched share with
  // c*(x - e) added: every evaluation at e the pruning saw stays zero, but
  // the Eq. 3 coefficient checks must catch the forgery.
  const FpCyclotomicRing& ring = engine->ring();
  FaultConfig cheat;
  cheat.tamper_fetch = [&ring, victim, e](FetchResponse& resp) {
    for (FetchEntry& entry : resp.entries) {
      if (entry.node_id != victim) continue;
      ByteReader r(entry.payload);
      FpPoly poly = ring.Deserialize(&r).value();
      poly = ring.Add(poly, ring.XMinus(e).value().ScalarMul(7));
      ByteWriter w;
      ring.Serialize(poly, &w);
      entry.payload = w.Take();
    }
  };
  engine->InjectFaults(0, cheat);

  auto optimistic = engine->Lookup(tag, VerifyMode::kOptimistic);
  ASSERT_TRUE(optimistic.ok());  // never fetches, so it cannot notice
  auto verified = engine->Lookup(tag, VerifyMode::kVerified);
  ASSERT_FALSE(verified.ok());
  EXPECT_EQ(verified.status().code(), StatusCode::kVerificationFailed);
}

TEST(EngineTest, ShamirFailsOverDeadServersAndRefusesBelowThreshold) {
  XmlNode doc = MakeDoc(78);
  DeterministicPrf seed = DeterministicPrf::FromString("engine-failover");
  FpEngine::Deploy deploy;
  deploy.scheme = ShareScheme::kShamir;
  deploy.num_servers = 5;
  deploy.threshold = 3;
  auto engine = FpEngine::Outsource(doc, seed, deploy).value();
  const std::string tag = doc.DistinctTags()[2];
  auto healthy = engine->Lookup(tag, VerifyMode::kVerified).value();

  // Kill two servers: exactly t remain; answers stay correct and the
  // session reports the mid-query failovers.
  FaultConfig down;
  down.fail_after_calls = 0;
  engine->InjectFaults(0, down);
  engine->InjectFaults(1, down);
  auto degraded = engine->Lookup(tag, VerifyMode::kVerified).value();
  EXPECT_EQ(SortedMatchPaths(degraded.matches),
            SortedMatchPaths(healthy.matches));
  EXPECT_GE(degraded.stats.server_failovers, 2u);

  // A third death leaves t-1: clean refusal, not a wrong answer.
  engine->InjectFaults(2, down);
  auto starved = engine->Lookup(tag, VerifyMode::kVerified);
  ASSERT_FALSE(starved.ok());
  EXPECT_EQ(starved.status().code(), StatusCode::kUnavailable);
}

TEST(EngineTest, ShamirTrustedConstOnlyAndXPathWork) {
  XmlNode doc = MakeDoc(79, 60, 6);
  DeterministicPrf seed = DeterministicPrf::FromString("engine-shamir-x");
  FpEngine::Deploy deploy;
  deploy.scheme = ShareScheme::kShamir;
  deploy.num_servers = 4;
  deploy.threshold = 2;
  auto engine = FpEngine::Outsource(doc, seed, deploy).value();
  auto legacy = MakeFpDeployment(doc, seed).value();
  TestSession<FpCyclotomicRing> session(&legacy.client, &legacy.server);

  std::vector<std::string> tags = doc.DistinctTags();
  const std::string xpath = "//" + tags[0] + "//" + tags[1 % tags.size()];
  auto oracle = session
                    .EvaluateXPath(XPathQuery::Parse(xpath).value(),
                                   XPathStrategy::kAllAtOnce,
                                   VerifyMode::kVerified)
                    .value();
  auto r = engine->RunXPath(xpath);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(SortedMatchPaths(r->matches), SortedMatchPaths(oracle.matches));
}

TEST(EngineTest, SaveOpenRoundTrip) {
  XmlNode doc = MakeDoc(80, 50, 6);
  DeterministicPrf seed = DeterministicPrf::FromString("engine-save");
  auto engine = FpEngine::Outsource(doc, seed).value();
  const std::string tag = doc.DistinctTags()[1];
  auto before = engine->Lookup(tag, VerifyMode::kVerified).value();

  const std::string store_path = ::testing::TempDir() + "engine_store.bin";
  const std::string key_path = ::testing::TempDir() + "engine_client.key";
  ASSERT_TRUE(engine->Save(store_path, key_path).ok());

  auto reopened = FpEngine::Open(store_path, key_path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto after = (*reopened)->Lookup(tag, VerifyMode::kVerified).value();
  EXPECT_EQ(SortedMatchPaths(after.matches),
            SortedMatchPaths(before.matches));
  EXPECT_EQ(after.stats.transport.bytes_down,
            before.stats.transport.bytes_down);
  std::remove(store_path.c_str());
  std::remove(key_path.c_str());
}

TEST(EngineTest, MultiServerSaveOpenRoundTripPerScheme) {
  // Save writes one store file per server plus a key file carrying the
  // deployment shape; Open rebuilds the full k-server group and answers
  // must match the live engine's for every scheme.
  XmlNode doc = MakeDoc(81, 60, 7);
  DeterministicPrf seed = DeterministicPrf::FromString("engine-save-multi");

  struct Case {
    const char* label;
    ShareScheme scheme;
    int num_servers;
    int threshold;
  };
  for (const Case& c : {Case{"additive-3", ShareScheme::kAdditive, 3, 0},
                        Case{"shamir-3of5", ShareScheme::kShamir, 5, 3}}) {
    FpEngine::Deploy deploy;
    deploy.scheme = c.scheme;
    deploy.num_servers = c.num_servers;
    deploy.threshold = c.threshold;
    auto engine = FpEngine::Outsource(doc, seed, deploy).value();
    const std::string tag = doc.DistinctTags()[1];
    auto before = engine->Lookup(tag, VerifyMode::kVerified).value();

    const std::string store_path =
        ::testing::TempDir() + "engine_multi_" + c.label + ".bin";
    const std::string key_path =
        ::testing::TempDir() + "engine_multi_" + c.label + ".key";
    ASSERT_TRUE(engine->Save(store_path, key_path).ok()) << c.label;
    // One share file per server, none at the two-party path.
    for (int s = 0; s < c.num_servers; ++s) {
      EXPECT_TRUE(
          ReadFileBytes(FpEngine::MultiServerStorePath(store_path, s)).ok())
          << c.label << " server " << s;
    }
    EXPECT_FALSE(ReadFileBytes(store_path).ok()) << c.label;

    auto reopened = FpEngine::Open(store_path, key_path);
    ASSERT_TRUE(reopened.ok()) << c.label << ": "
                               << reopened.status().ToString();
    EXPECT_EQ((*reopened)->scheme(), c.scheme);
    EXPECT_EQ((*reopened)->num_servers(), static_cast<size_t>(c.num_servers));
    for (VerifyMode mode : kAllModes) {
      auto live = engine->Lookup(tag, mode).value();
      auto persisted = (*reopened)->Lookup(tag, mode).value();
      EXPECT_EQ(SortedMatchPaths(persisted.matches),
                SortedMatchPaths(live.matches))
          << c.label << " mode " << static_cast<int>(mode);
    }
    EXPECT_EQ(SortedMatchPaths((*reopened)
                                   ->Lookup(tag, VerifyMode::kVerified)
                                   .value()
                                   .matches),
              SortedMatchPaths(before.matches));
    // A reopened Shamir deployment still fails over dead servers.
    if (c.scheme == ShareScheme::kShamir) {
      FaultConfig down;
      down.fail_after_calls = 0;
      (*reopened)->InjectFaults(0, down);
      auto degraded = (*reopened)->Lookup(tag, VerifyMode::kVerified).value();
      EXPECT_EQ(SortedMatchPaths(degraded.matches),
                SortedMatchPaths(before.matches));
    }
    for (int s = 0; s < c.num_servers; ++s)
      std::remove(FpEngine::MultiServerStorePath(store_path, s).c_str());
    std::remove(key_path.c_str());
  }
}

TEST(EngineTest, ZAdditiveSaveOpenRoundTrip) {
  XmlNode doc = MakeDoc(82, 30, 5);
  DeterministicPrf seed = DeterministicPrf::FromString("engine-save-z");
  ZEngine::Deploy deploy;
  deploy.scheme = ShareScheme::kAdditive;
  deploy.num_servers = 2;
  auto engine = ZEngine::Outsource(doc, seed, deploy).value();
  const std::string tag = doc.DistinctTags()[0];
  auto before = engine->Lookup(tag, VerifyMode::kVerified).value();

  const std::string store_path = ::testing::TempDir() + "engine_z_multi.bin";
  const std::string key_path = ::testing::TempDir() + "engine_z_multi.key";
  ASSERT_TRUE(engine->Save(store_path, key_path).ok());
  auto reopened = ZEngine::Open(store_path, key_path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto after = (*reopened)->Lookup(tag, VerifyMode::kVerified).value();
  EXPECT_EQ(SortedMatchPaths(after.matches), SortedMatchPaths(before.matches));
  for (int s = 0; s < 2; ++s)
    std::remove(ZEngine::MultiServerStorePath(store_path, s).c_str());
  std::remove(key_path.c_str());
}

}  // namespace
}  // namespace polysse
