// Tests for the §6 future-work extensions: encrypted payload store, hashed
// data-polynomial content index, Goh-style Bloom secure index.
#include <gtest/gtest.h>

#include <set>
#include <span>
#include <string>

#include "crypto/sha256.h"
#include "index/bloom_index.h"
#include "index/data_poly_index.h"
#include "index/payload_store.h"
#include "xml/xml_generator.h"
#include "xml/xml_parser.h"

namespace polysse {
namespace {

TEST(TokenizeTest, SplitsAndLowercases) {
  EXPECT_EQ(TokenizeWords("Hello, World! x2"),
            (std::vector<std::string>{"hello", "world", "x2"}));
  EXPECT_TRUE(TokenizeWords("").empty());
  EXPECT_TRUE(TokenizeWords("  ,.;  ").empty());
}

TEST(PayloadStoreTest, EncryptDecryptRoundTrip) {
  XmlNode doc = MakeMedicalRecordsDocument(5, 81);
  PayloadCodec codec(DeterministicPrf::FromString("payload"));
  PayloadStore store = codec.Encrypt(doc);
  EXPECT_EQ(store.size(), doc.SubtreeSize());

  size_t id = 0;
  doc.Preorder([&](const XmlNode& n, const std::vector<int>&) {
    const auto* entry = store.Get(id).value();
    EXPECT_EQ(codec.Decrypt(*entry).value(), n.text()) << "node " << id;
    if (!n.text().empty()) {
      // Ciphertext must differ from plaintext.
      std::string ct(entry->ciphertext.begin(), entry->ciphertext.end());
      EXPECT_NE(ct, n.text());
    }
    ++id;
  });
  EXPECT_FALSE(store.Get(store.size()).ok());
}

TEST(PayloadStoreTest, PerNodeKeysAreIndependent) {
  // Two nodes with identical text must produce different ciphertexts.
  auto doc = ParseXml("<r><a>same text</a><a>same text</a></r>").value();
  PayloadCodec codec(DeterministicPrf::FromString("iv"));
  PayloadStore store = codec.Encrypt(doc);
  EXPECT_NE(store.Get(1).value()->ciphertext, store.Get(2).value()->ciphertext);
}

TEST(PayloadStoreTest, WrongSeedDecryptsGarbage) {
  auto doc = ParseXml("<a>secret content</a>").value();
  PayloadCodec good(DeterministicPrf::FromString("good"));
  PayloadCodec bad(DeterministicPrf::FromString("bad"));
  PayloadStore store = good.Encrypt(doc);
  EXPECT_NE(bad.Decrypt(*store.Get(0).value()).value(), "secret content");
}

TEST(ContentSearchTest, FindsWordsAndVerifiesCandidates) {
  auto doc = ParseXml(
      "<library>"
      "<book>quantum mechanics primer</book>"
      "<book>classical mechanics</book>"
      "<shelf><book>quantum computing</book></shelf>"
      "</library>").value();
  auto service = ContentSearchService::Build(
      doc, DeterministicPrf::FromString("content"));
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  auto quantum = service->Search("quantum").value();
  EXPECT_EQ(std::set<std::string>(quantum.match_paths.begin(),
                                  quantum.match_paths.end()),
            (std::set<std::string>{"0", "2/0"}));
  auto mechanics = service->Search("mechanics").value();
  EXPECT_EQ(mechanics.match_paths.size(), 2u);
  auto absent = service->Search("biology").value();
  EXPECT_TRUE(absent.match_paths.empty());
}

TEST(ContentSearchTest, PruningSkipsDeadBranches) {
  // Only one branch contains the needle word: the other branch's subtrees
  // must never be evaluated.
  auto doc = ParseXml(
      "<r>"
      "<a><b>needle here</b><c>x</c></a>"
      "<d><e>nothing</e><f>void</f><g><h>empty</h></g></d>"
      "</r>").value();
  auto service =
      ContentSearchService::Build(doc, DeterministicPrf::FromString("prune"));
  ASSERT_TRUE(service.ok());
  auto r = service->Search("needle").value();
  EXPECT_EQ(r.match_paths, (std::vector<std::string>{"0/0"}));
  // Evaluated: root, a, d (frontier), then a's children b, c. The d subtree
  // below d itself is pruned: e, f, g, h never touched.
  EXPECT_LE(r.stats.nodes_evaluated, 6u);
}

TEST(ContentSearchTest, CaseInsensitive) {
  auto doc = ParseXml("<a>The Quick Brown Fox</a>").value();
  auto service =
      ContentSearchService::Build(doc, DeterministicPrf::FromString("case"));
  ASSERT_TRUE(service.ok());
  EXPECT_EQ(service->Search("quick").value().match_paths.size(), 1u);
  EXPECT_EQ(service->Search("QUICK").value().match_paths.size(), 1u);
}

TEST(ContentSearchTest, MedicalCorpusAgainstPlainScan) {
  XmlNode doc = MakeMedicalRecordsDocument(15, 83);
  auto service =
      ContentSearchService::Build(doc, DeterministicPrf::FromString("med"));
  ASSERT_TRUE(service.ok());
  for (const char* word : {"alpha", "bravo", "kilo", "notaword"}) {
    std::set<std::string> expected;
    doc.Preorder([&](const XmlNode& n, const std::vector<int>& path) {
      for (const std::string& w : TokenizeWords(n.text())) {
        if (w == word) expected.insert(PathToString(path));
      }
    });
    auto r = service->Search(word).value();
    EXPECT_EQ(std::set<std::string>(r.match_paths.begin(),
                                    r.match_paths.end()),
              expected)
        << word;
  }
}

TEST(BloomIndexTest, CandidatesCoverAllTrueMatches) {
  XmlNode doc = MakeMedicalRecordsDocument(20, 85);
  BloomIndex index = BloomIndex::Build(doc, DeterministicPrf::FromString("bl"));
  for (const char* word : {"alpha", "echo", "lima"}) {
    auto r = index.Search(word, doc);
    // No false negatives, ever (Bloom property).
    std::set<std::string> cands(r.candidate_paths.begin(),
                                r.candidate_paths.end());
    doc.Preorder([&](const XmlNode& n, const std::vector<int>& path) {
      for (const std::string& w : TokenizeWords(n.text())) {
        if (w == word) {
          EXPECT_TRUE(cands.count(PathToString(path)))
              << word << " @ " << PathToString(path);
        }
      }
    });
    EXPECT_EQ(r.stats.nodes_tested, doc.SubtreeSize());
    EXPECT_EQ(r.stats.candidates,
              r.verified_paths.size() + r.stats.false_positives);
  }
}

TEST(BloomIndexTest, FalsePositiveRateShrinksWithFilterSize) {
  XmlNode doc = MakeMedicalRecordsDocument(40, 86);
  size_t fp_small = 0, fp_large = 0;
  BloomIndex::Options small_opt;
  small_opt.bits_per_node = 16;
  small_opt.num_hashes = 2;
  BloomIndex::Options large_opt;
  large_opt.bits_per_node = 1024;
  large_opt.num_hashes = 6;
  BloomIndex small =
      BloomIndex::Build(doc, DeterministicPrf::FromString("s"), small_opt);
  BloomIndex large =
      BloomIndex::Build(doc, DeterministicPrf::FromString("s"), large_opt);
  for (const char* w : {"alpha", "bravo", "carol", "delta", "echo", "fox",
                        "golf", "hotel", "india", "juliet"}) {
    fp_small += small.Search(w, doc).stats.false_positives;
    fp_large += large.Search(w, doc).stats.false_positives;
  }
  EXPECT_GT(fp_small, fp_large);
  EXPECT_EQ(fp_large, 0u);  // 1024 bits, tiny texts: FPs vanish
}

TEST(BloomIndexTest, AbsentWordMostlyFiltered) {
  XmlNode doc = MakeMedicalRecordsDocument(30, 87);
  BloomIndex index =
      BloomIndex::Build(doc, DeterministicPrf::FromString("abs"));
  auto r = index.Search("zzzmissing", doc);
  EXPECT_TRUE(r.verified_paths.empty());
  // With 256 bits / 4 hashes and <= 6 words per node, FP rate ~ (k*w/m)^k
  // is far below 1%; allow a little slack.
  EXPECT_LE(r.stats.false_positives, doc.SubtreeSize() / 20);
}

TEST(BloomIndexTest, StorageIsLinearInNodes) {
  XmlNode doc10 = MakeMedicalRecordsDocument(10, 88);
  XmlNode doc40 = MakeMedicalRecordsDocument(40, 88);
  BloomIndex::Options opt;
  BloomIndex i10 = BloomIndex::Build(doc10, DeterministicPrf::FromString("x"), opt);
  BloomIndex i40 = BloomIndex::Build(doc40, DeterministicPrf::FromString("x"), opt);
  double ratio = static_cast<double>(i40.PersistedBytes()) /
                 static_cast<double>(i10.PersistedBytes());
  double node_ratio = static_cast<double>(doc40.SubtreeSize()) /
                      static_cast<double>(doc10.SubtreeSize());
  EXPECT_NEAR(ratio, node_ratio, node_ratio * 0.3);
}

// Pins the exact trapdoor derivation: HMAC(seed, "bloom/<j>/<word>") over
// the message's own bytes. The original code sized the span as
// word.size() + 8 + len(j) — one past the real length — silently hashing
// the temporary string's NUL terminator into every trapdoor.
TEST(BloomIndexTest, TrapdoorHashesExactMessageBytes) {
  DeterministicPrf prf = DeterministicPrf::FromString("msg-pin");
  auto trapdoors = BloomIndex::WordTrapdoors(prf, 2, "diagnosis");
  ASSERT_EQ(trapdoors.size(), 2u);
  for (int j = 0; j < 2; ++j) {
    const std::string message = "bloom/" + std::to_string(j) + "/diagnosis";
    auto seed_span =
        std::span<const uint8_t>(prf.seed().data(), prf.seed().size());
    auto want = HmacSha256(
        seed_span,
        std::span<const uint8_t>(
            reinterpret_cast<const uint8_t*>(message.data()), message.size()));
    EXPECT_EQ(trapdoors[j], want) << "j=" << j;

    std::string with_nul = message;
    with_nul.push_back('\0');
    auto buggy = HmacSha256(
        seed_span,
        std::span<const uint8_t>(
            reinterpret_cast<const uint8_t*>(with_nul.data()),
            with_nul.size()));
    EXPECT_NE(trapdoors[j], buggy) << "j=" << j;
  }
}

TEST(DocBloomFilterTest, NoFalseNegativesAndMostAbsentWordsRejected) {
  DeterministicPrf seed = DeterministicPrf::FromString("docbloom");
  std::vector<std::string> words = {"alpha", "beta", "gamma", "delta"};
  DocBloomFilter::Options opt;
  DocBloomFilter filter = DocBloomFilter::Build(seed, "d1.0", words, opt);

  for (const std::string& w : words)
    EXPECT_TRUE(filter.MayContain(DocBloomFilter::QueryTrapdoors(seed, w, opt)))
        << w;

  size_t rejected = 0;
  for (int i = 0; i < 200; ++i) {
    std::string absent = "absent" + std::to_string(i);
    if (!filter.MayContain(
            DocBloomFilter::QueryTrapdoors(seed, absent, opt)))
      ++rejected;
  }
  // 16 of 512 bits set: the false-positive rate is far below 1 in 200.
  EXPECT_GE(rejected, 195u);
}

TEST(DocBloomFilterTest, SaltSeparatesDocumentsWithoutFalseNegatives) {
  DeterministicPrf seed = DeterministicPrf::FromString("docbloom-salt");
  DocBloomFilter::Options opt;
  DocBloomFilter f1 = DocBloomFilter::Build(seed, "d1.0", {"surgery"}, opt);
  DocBloomFilter f2 = DocBloomFilter::Build(seed, "d2.1", {"billing"}, opt);

  auto surgery = DocBloomFilter::QueryTrapdoors(seed, "surgery", opt);
  auto billing = DocBloomFilter::QueryTrapdoors(seed, "billing", opt);
  EXPECT_TRUE(f1.MayContain(surgery));
  EXPECT_TRUE(f2.MayContain(billing));
  // Different salts give the same word different bit positions, so one
  // document's content never leaks membership into another's filter.
  EXPECT_FALSE(f1.MayContain(billing));
  EXPECT_FALSE(f2.MayContain(surgery));
}

}  // namespace
}  // namespace polysse
