// White-box deployment builders for tests and benches. The product API is
// polysse::Engine (core/engine.h); suites that assert on the individual
// pieces — the ring, the thin client, a raw ServerStore, an explicitly
// wired endpoint — build them here from the same public primitives the
// engine uses (PrepareOutsource + SplitShares), with none of the engine's
// ownership wrapping in the way.
#ifndef POLYSSE_TESTS_TESTING_DEPLOY_HELPERS_H_
#define POLYSSE_TESTS_TESTING_DEPLOY_HELPERS_H_

#include <utility>

#include "core/client_context.h"
#include "core/endpoint.h"
#include "core/outsource.h"
#include "core/query_session.h"
#include "core/server_store.h"
#include "core/sharing.h"

namespace polysse {
namespace testing {

/// The pieces of one two-party deployment, exposed individually.
template <typename Ring>
struct TwoPartyDeployment {
  Ring ring;
  ClientContext<Ring> client;
  ServerStore<Ring> server;
};

using FpDeployment = TwoPartyDeployment<FpCyclotomicRing>;
using ZDeployment = TwoPartyDeployment<ZQuotientRing>;

/// Document -> {ring, thin client, server store} over F_p, split exactly
/// like an engine two-party deployment.
inline Result<FpDeployment> MakeFpDeployment(
    const XmlNode& document, const DeterministicPrf& seed,
    const FpOutsourceOptions& options = {}) {
  ASSIGN_OR_RETURN(PreparedOutsource<FpCyclotomicRing> prep,
                   PrepareOutsource(document, seed, options));
  SharedTrees<FpCyclotomicRing> shares =
      SplitShares(prep.ring, prep.data, seed);
  return FpDeployment{
      prep.ring,
      ClientContext<FpCyclotomicRing>::SeedOnly(prep.ring,
                                                std::move(prep.tag_map), seed),
      ServerStore<FpCyclotomicRing>(prep.ring, std::move(shares.server))};
}

/// Document -> {ring, thin client, server store} over Z[x]/(r).
inline Result<ZDeployment> MakeZDeployment(const XmlNode& document,
                                           const DeterministicPrf& seed,
                                           const ZOutsourceOptions& options = {}) {
  ASSIGN_OR_RETURN(PreparedOutsource<ZQuotientRing> prep,
                   PrepareOutsource(document, seed, options));
  SharedTrees<ZQuotientRing> shares =
      SplitShares(prep.ring, prep.data, seed, prep.split_options);
  return ZDeployment{
      prep.ring,
      ClientContext<ZQuotientRing>::SeedOnly(prep.ring,
                                             std::move(prep.tag_map), seed,
                                             prep.split_options),
      ServerStore<ZQuotientRing>(prep.ring, std::move(shares.server))};
}

namespace internal {
/// Base-from-member holder so the endpoint outlives the QuerySession base
/// below (bases initialize before members, so the session cannot point at
/// a not-yet-constructed endpoint).
struct OwnedLoopback {
  explicit OwnedLoopback(ServerHandler* handler) : endpoint(handler) {}
  LoopbackEndpoint endpoint;
};
}  // namespace internal

/// A QuerySession over one in-process store with every message serialized
/// both ways — the session shape most suites drive. Owns its loopback
/// endpoint; use it exactly like the QuerySession it is.
template <typename Ring>
class TestSession : private internal::OwnedLoopback,
                    public QuerySession<Ring> {
 public:
  TestSession(ClientContext<Ring>* client, ServerStore<Ring>* store)
      : internal::OwnedLoopback(store),
        QuerySession<Ring>(client, EndpointGroup::TwoParty(&endpoint)) {}
};

}  // namespace testing
}  // namespace polysse

#endif  // POLYSSE_TESTS_TESTING_DEPLOY_HELPERS_H_
