#include "testing/ring_generators.h"

namespace polysse {
namespace testing {

FpCyclotomicRing::Elem RandomFpElem(const FpCyclotomicRing& ring,
                                    DeterministicRng& rng) {
  return ring.Random([&] { return rng(); });
}

ZQuotientRing::Elem RandomZElem(const ZQuotientRing& ring,
                                DeterministicRng& rng, size_t coeff_bits) {
  return ring.Random([&] { return rng(); }, coeff_bits);
}

FpTagProduct RandomFpTagProduct(const FpCyclotomicRing& ring,
                                DeterministicRng& rng, int factors) {
  FpTagProduct out{ring.One(), {}};
  for (int k = 0; k < factors; ++k) {
    uint64_t t = rng.UniformInt(1, ring.MaxTagValue());
    out.poly = ring.Mul(out.poly, ring.XMinus(t).value());
    out.tags.push_back(t);
  }
  return out;
}

ZTagProduct RandomZTagProduct(const ZQuotientRing& ring, DeterministicRng& rng,
                              int factors, uint64_t max_tag) {
  ZTagProduct out{ring.One(), {}};
  for (int k = 0; k < factors; ++k) {
    uint64_t t = rng.UniformInt(1, max_tag);
    out.poly = ring.Mul(out.poly, ring.XMinus(t).value());
    out.tags.push_back(t);
  }
  return out;
}

BigInt RandomBigInt(DeterministicRng& rng, int limbs, bool signed_value) {
  std::vector<uint8_t> bytes(static_cast<size_t>(limbs) * 8);
  for (auto& b : bytes) b = static_cast<uint8_t>(rng());
  const bool negative = signed_value && rng() % 2 == 0;
  return BigInt::FromLittleEndianBytes(bytes, negative);
}

}  // namespace testing
}  // namespace polysse
