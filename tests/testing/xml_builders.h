// Compact XML document builders for tests: degenerate shapes (chain, star,
// uniform random) plus a fluent nesting builder, so suites stop hand-rolling
// XML strings for structural cases.
#ifndef POLYSSE_TESTS_TESTING_XML_BUILDERS_H_
#define POLYSSE_TESTS_TESTING_XML_BUILDERS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "xml/xml_node.h"

namespace polysse {
namespace testing {

/// A root-to-leaf chain of `depth` nodes tagged tag0/tag1/... (depth >= 1).
XmlNode MakeChainDocument(size_t depth, const std::string& tag_prefix = "tag");

/// A root with `fanout` identical leaf children.
XmlNode MakeStarDocument(size_t fanout, const std::string& hub_tag = "hub",
                         const std::string& leaf_tag = "leaf");

/// Deterministic random tree via the library generator: `num_nodes` nodes
/// over a `tag_alphabet`-sized alphabet.
XmlNode MakeRandomDocument(size_t num_nodes, size_t tag_alphabet,
                           uint64_t seed, size_t max_fanout = 4);

/// Fluent nested builder:
///   XmlTreeBuilder b("inbox");
///   b.Open("mail").Leaf("subject", "hello").Leaf("body", "hi").Close();
///   XmlNode doc = b.Build();
class XmlTreeBuilder {
 public:
  explicit XmlTreeBuilder(std::string root_tag);

  /// Opens a nested element; subsequent nodes attach under it until Close().
  XmlTreeBuilder& Open(std::string tag);
  /// Adds a childless element, optionally with text content.
  XmlTreeBuilder& Leaf(std::string tag, std::string text = "");
  /// Closes the innermost open element. CHECK-fails at the root.
  XmlTreeBuilder& Close();

  /// Returns the finished document (all elements implicitly closed).
  XmlNode Build() const { return root_; }

 private:
  XmlNode* Top() { return stack_.back(); }

  XmlNode root_;
  std::vector<XmlNode*> stack_;  // open-element path; stack_[0] == &root_
};

}  // namespace testing
}  // namespace polysse

#endif  // POLYSSE_TESTS_TESTING_XML_BUILDERS_H_
