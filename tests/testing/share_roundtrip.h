// Share-split roundtrip checker: the §4.2 invariant every deployment relies
// on. For a document + ring it builds the polynomial tree, splits it into
// client/server share trees, and asserts for every node that
//   client.poly + server.poly == data.poly     (share reconstruction)
//   RecoverTagValue(combined) == mapped tag    (Theorems 1/2)
// Returns a gtest AssertionResult naming the first offending node.
#ifndef POLYSSE_TESTS_TESTING_SHARE_ROUNDTRIP_H_
#define POLYSSE_TESTS_TESTING_SHARE_ROUNDTRIP_H_

#include <gtest/gtest.h>

#include "core/poly_tree.h"
#include "core/sharing.h"
#include "core/tag_map.h"
#include "crypto/prf.h"
#include "xml/xml_node.h"

namespace polysse {
namespace testing {

template <typename Ring>
::testing::AssertionResult ShareRoundtripOk(
    const Ring& ring, const TagMap& tag_map, const XmlNode& document,
    const DeterministicPrf& client_prf, const ShareSplitOptions& options = {}) {
  auto tree_or = BuildPolyTree(ring, tag_map, document);
  if (!tree_or.ok()) {
    return ::testing::AssertionFailure()
           << "BuildPolyTree: " << tree_or.status().ToString();
  }
  const PolyTree<Ring>& data = *tree_or;
  SharedTrees<Ring> shares = SplitShares(ring, data, client_prf, options);
  if (shares.client.size() != data.size() ||
      shares.server.size() != data.size()) {
    return ::testing::AssertionFailure()
           << "share trees lost nodes: client " << shares.client.size()
           << ", server " << shares.server.size() << ", data " << data.size();
  }
  for (size_t i = 0; i < data.size(); ++i) {
    const auto& node = data.nodes[i];
    // Scrubbing: neither share may carry the plaintext tag value.
    if (shares.client.nodes[i].tag_value != 0 ||
        shares.server.nodes[i].tag_value != 0) {
      return ::testing::AssertionFailure()
             << "node " << i << " (path '" << node.path
             << "'): share carries a tag value";
    }
    typename Ring::Elem combined = CombineShares(
        ring, shares.client.nodes[i].poly, shares.server.nodes[i].poly);
    if (!ring.Equal(combined, node.poly)) {
      return ::testing::AssertionFailure()
             << "node " << i << " (path '" << node.path
             << "'): client+server != data; got " << ring.ToString(combined)
             << ", want " << ring.ToString(node.poly);
    }
    // The client share must also be re-derivable from the seed alone (the
    // thin-client property sharing.h promises).
    typename Ring::Elem rederived =
        DeriveClientShare(ring, client_prf, node.path, options);
    if (!ring.Equal(rederived, shares.client.nodes[i].poly)) {
      return ::testing::AssertionFailure()
             << "node " << i << " (path '" << node.path
             << "'): client share not PRF-rederivable";
    }
    auto t = RecoverTagValue(ring, data, static_cast<int>(i));
    if (!t.ok()) {
      return ::testing::AssertionFailure()
             << "node " << i << " (path '" << node.path
             << "'): RecoverTagValue: " << t.status().ToString();
    }
    if (*t != node.tag_value) {
      return ::testing::AssertionFailure()
             << "node " << i << " (path '" << node.path << "'): recovered tag "
             << *t << ", want " << node.tag_value;
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace testing
}  // namespace polysse

#endif  // POLYSSE_TESTS_TESTING_SHARE_ROUNDTRIP_H_
