#include "testing/xml_builders.h"

#include "util/check.h"
#include "xml/xml_generator.h"

namespace polysse {
namespace testing {

XmlNode MakeChainDocument(size_t depth, const std::string& tag_prefix) {
  POLYSSE_CHECK(depth >= 1);
  XmlNode root(tag_prefix + "0");
  XmlNode* cur = &root;
  for (size_t d = 1; d < depth; ++d) {
    cur = &cur->AddChild(tag_prefix + std::to_string(d));
  }
  return root;
}

XmlNode MakeStarDocument(size_t fanout, const std::string& hub_tag,
                         const std::string& leaf_tag) {
  XmlNode root(hub_tag);
  for (size_t i = 0; i < fanout; ++i) root.AddChild(leaf_tag);
  return root;
}

XmlNode MakeRandomDocument(size_t num_nodes, size_t tag_alphabet,
                           uint64_t seed, size_t max_fanout) {
  XmlGeneratorOptions options;
  options.num_nodes = num_nodes;
  options.tag_alphabet = tag_alphabet;
  options.max_fanout = static_cast<int>(max_fanout);
  options.seed = seed;
  return GenerateXmlTree(options);
}

XmlTreeBuilder::XmlTreeBuilder(std::string root_tag)
    : root_(std::move(root_tag)) {
  stack_.push_back(&root_);
}

XmlTreeBuilder& XmlTreeBuilder::Open(std::string tag) {
  stack_.push_back(&Top()->AddChild(std::move(tag)));
  return *this;
}

XmlTreeBuilder& XmlTreeBuilder::Leaf(std::string tag, std::string text) {
  XmlNode& leaf = Top()->AddChild(std::move(tag));
  if (!text.empty()) leaf.set_text(std::move(text));
  return *this;
}

XmlTreeBuilder& XmlTreeBuilder::Close() {
  POLYSSE_CHECK(stack_.size() > 1);
  stack_.pop_back();
  return *this;
}

}  // namespace testing
}  // namespace polysse
