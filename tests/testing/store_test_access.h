// Test-only backdoor into a ServerStore's share tree. Production code must
// never mutate a store behind the protocol; cheating-server scenarios are
// modeled with FaultInjectingEndpoint instead. This hook remains for the
// one legacy case that needs to corrupt *stored* state (so eval and fetch
// lie consistently) rather than in-flight responses.
#ifndef POLYSSE_TESTS_TESTING_STORE_TEST_ACCESS_H_
#define POLYSSE_TESTS_TESTING_STORE_TEST_ACCESS_H_

#include "core/server_store.h"

namespace polysse {

struct ServerStoreTestAccess {
  template <typename Ring>
  static PolyTree<Ring>& MutableTree(ServerStore<Ring>& store) {
    return store.tree_;
  }
};

}  // namespace polysse

#endif  // POLYSSE_TESTS_TESTING_STORE_TEST_ACCESS_H_
