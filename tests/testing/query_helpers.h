// Small helpers for comparing query answers against oracles, shared by the
// property and e2e suites.
#ifndef POLYSSE_TESTS_TESTING_QUERY_HELPERS_H_
#define POLYSSE_TESTS_TESTING_QUERY_HELPERS_H_

#include <algorithm>
#include <string>
#include <vector>

#include "core/query_session.h"

namespace polysse {
namespace testing {

/// The match paths of a query answer, sorted for order-insensitive compare.
inline std::vector<std::string> SortedMatchPaths(
    const std::vector<MatchedNode>& matches) {
  std::vector<std::string> out;
  out.reserve(matches.size());
  for (const auto& m : matches) out.push_back(m.path);
  std::sort(out.begin(), out.end());
  return out;
}

inline std::vector<std::string> Sorted(std::vector<std::string> v) {
  std::sort(v.begin(), v.end());
  return v;
}

}  // namespace testing
}  // namespace polysse

#endif  // POLYSSE_TESTS_TESTING_QUERY_HELPERS_H_
