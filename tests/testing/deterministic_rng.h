// Deterministic randomness for tests. Every random test in the repo draws
// from a DeterministicRng so failures reproduce bit-for-bit across runs and
// machines; the fixture seeds itself from the running test's full name so
// adding or reordering tests never reshuffles another test's stream.
#ifndef POLYSSE_TESTS_TESTING_DETERMINISTIC_RNG_H_
#define POLYSSE_TESTS_TESTING_DETERMINISTIC_RNG_H_

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string_view>

namespace polysse {
namespace testing {

/// Seeded 64-bit generator, callable like the `next_u64` functor the ring
/// `Random()` templates expect.
class DeterministicRng {
 public:
  explicit DeterministicRng(uint64_t seed) : engine_(seed) {}

  uint64_t operator()() { return engine_(); }
  uint64_t NextU64() { return engine_(); }
  /// Uniform value in [lo, hi] (inclusive); lo <= hi.
  uint64_t UniformInt(uint64_t lo, uint64_t hi) {
    return lo + engine_() % (hi - lo + 1);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Stable FNV-1a hash of a test name (avoids std::hash, which may differ
/// between standard libraries).
inline uint64_t SeedFromName(std::string_view name) {
  uint64_t h = 1469598103934665603ull;
  for (char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Fixture giving each test its own deterministic stream, derived from the
/// suite + test (+ param) name.
class DeterministicRngTest : public ::testing::Test {
 protected:
  DeterministicRngTest()
      : rng_(SeedFromName(FullTestName())) {}

  DeterministicRng& rng() { return rng_; }

  static std::string FullTestName() {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    if (info == nullptr) return "<no-test>";
    return std::string(info->test_suite_name()) + "." + info->name();
  }

 private:
  DeterministicRng rng_;
};

}  // namespace testing
}  // namespace polysse

#endif  // POLYSSE_TESTS_TESTING_DETERMINISTIC_RNG_H_
