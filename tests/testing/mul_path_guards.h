// Scoped guards for the global multiplication-path and Karatsuba-threshold
// knobs, so a test can force the reference kernel or a deep-recursion
// threshold and reliably restore the default even on early exit. Shared by
// the differential, golden-vector, and e2e suites.
#ifndef POLYSSE_TESTS_TESTING_MUL_PATH_GUARDS_H_
#define POLYSSE_TESTS_TESTING_MUL_PATH_GUARDS_H_

#include <cstddef>

#include "field/simd_eval.h"
#include "poly/fp_conv.h"
#include "poly/z_poly.h"

namespace polysse {
namespace testing {

class ScopedFpMulPath {
 public:
  explicit ScopedFpMulPath(FpMulPath path) : prev_(SetFpMulPath(path)) {}
  ~ScopedFpMulPath() { SetFpMulPath(prev_); }
  ScopedFpMulPath(const ScopedFpMulPath&) = delete;
  ScopedFpMulPath& operator=(const ScopedFpMulPath&) = delete;

 private:
  FpMulPath prev_;
};

class ScopedZMulPath {
 public:
  explicit ScopedZMulPath(ZMulPath path) : prev_(SetZMulPath(path)) {}
  ~ScopedZMulPath() { SetZMulPath(prev_); }
  ScopedZMulPath(const ScopedZMulPath&) = delete;
  ScopedZMulPath& operator=(const ScopedZMulPath&) = delete;

 private:
  ZMulPath prev_;
};

class ScopedFpKaratsubaThreshold {
 public:
  explicit ScopedFpKaratsubaThreshold(size_t t)
      : prev_(SetFpKaratsubaThreshold(t)) {}
  ~ScopedFpKaratsubaThreshold() { SetFpKaratsubaThreshold(prev_); }
  ScopedFpKaratsubaThreshold(const ScopedFpKaratsubaThreshold&) = delete;
  ScopedFpKaratsubaThreshold& operator=(const ScopedFpKaratsubaThreshold&) =
      delete;

 private:
  size_t prev_;
};

class ScopedFpNttThreshold {
 public:
  explicit ScopedFpNttThreshold(size_t t) : prev_(SetFpNttThreshold(t)) {}
  ~ScopedFpNttThreshold() { SetFpNttThreshold(prev_); }
  ScopedFpNttThreshold(const ScopedFpNttThreshold&) = delete;
  ScopedFpNttThreshold& operator=(const ScopedFpNttThreshold&) = delete;

 private:
  size_t prev_;
};

class ScopedBatchEvalPath {
 public:
  explicit ScopedBatchEvalPath(BatchEvalPath path)
      : prev_(SetBatchEvalPath(path)) {}
  ~ScopedBatchEvalPath() { SetBatchEvalPath(prev_); }
  ScopedBatchEvalPath(const ScopedBatchEvalPath&) = delete;
  ScopedBatchEvalPath& operator=(const ScopedBatchEvalPath&) = delete;

 private:
  BatchEvalPath prev_;
};

class ScopedZKaratsubaThreshold {
 public:
  explicit ScopedZKaratsubaThreshold(size_t t)
      : prev_(SetZKaratsubaThreshold(t)) {}
  ~ScopedZKaratsubaThreshold() { SetZKaratsubaThreshold(prev_); }
  ScopedZKaratsubaThreshold(const ScopedZKaratsubaThreshold&) = delete;
  ScopedZKaratsubaThreshold& operator=(const ScopedZKaratsubaThreshold&) =
      delete;

 private:
  size_t prev_;
};

}  // namespace testing
}  // namespace polysse

#endif  // POLYSSE_TESTS_TESTING_MUL_PATH_GUARDS_H_
