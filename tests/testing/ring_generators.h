// Random-element generators for the paper's two quotient rings, shared by
// the property suites. Everything draws from a DeterministicRng so sweeps
// reproduce exactly.
#ifndef POLYSSE_TESTS_TESTING_RING_GENERATORS_H_
#define POLYSSE_TESTS_TESTING_RING_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "ring/fp_cyclotomic_ring.h"
#include "ring/z_quotient_ring.h"
#include "testing/deterministic_rng.h"

namespace polysse {
namespace testing {

/// Uniform element of F_p[x]/(x^{p-1}-1).
FpCyclotomicRing::Elem RandomFpElem(const FpCyclotomicRing& ring,
                                    DeterministicRng& rng);

/// Bounded-coefficient element of Z[x]/(r), `coeff_bits` bits per coefficient.
ZQuotientRing::Elem RandomZElem(const ZQuotientRing& ring,
                                DeterministicRng& rng,
                                size_t coeff_bits = 96);

/// A product of in-range linear tag factors together with the tags used —
/// the shape every node polynomial of the scheme has, and the input
/// SolveTag/RecoverTagValue is defined on.
struct FpTagProduct {
  FpCyclotomicRing::Elem poly;
  std::vector<uint64_t> tags;
};
/// Product of `factors` random factors (x - t), t uniform in {1..p-2}
/// (Lemma 3's zero-divisor-free range).
FpTagProduct RandomFpTagProduct(const FpCyclotomicRing& ring,
                                DeterministicRng& rng, int factors);

struct ZTagProduct {
  ZQuotientRing::Elem poly;
  std::vector<uint64_t> tags;
};
/// Product of `factors` random factors (x - t), t uniform in [1, max_tag].
ZTagProduct RandomZTagProduct(const ZQuotientRing& ring, DeterministicRng& rng,
                              int factors, uint64_t max_tag = 50);

/// Uniform BigInt of exactly `limbs` 64-bit limbs (random sign when
/// `signed_value`).
BigInt RandomBigInt(DeterministicRng& rng, int limbs, bool signed_value = true);

}  // namespace testing
}  // namespace polysse

#endif  // POLYSSE_TESTS_TESTING_RING_GENERATORS_H_
