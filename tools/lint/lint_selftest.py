#!/usr/bin/env python3
"""Unit tests for polysse-lint itself, driven by the fixture trees under
testdata/: every check must catch its known-bad file, the clean tree must
produce zero findings (including one deliberately suppressed violation),
and the declared-cycle tree must be rejected.

Run directly (`python3 tools/lint/lint_selftest.py`) or via ctest
(`ctest -L lint`). Stdlib-only.
"""

import os
import sys
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, HERE)

import polysse_lint  # noqa: E402

BAD_TREE = os.path.join(HERE, "testdata", "bad_tree")
CLEAN_TREE = os.path.join(HERE, "testdata", "clean_tree")
CYCLE_TREE = os.path.join(HERE, "testdata", "cycle_tree")


def findings_for(root, checks=polysse_lint.CHECKS):
    return polysse_lint.run_checks(root, checks)


class BadTreeTest(unittest.TestCase):
    """Each known-bad fixture file is caught by exactly the right check."""

    @classmethod
    def setUpClass(cls):
        cls.findings = findings_for(BAD_TREE)

    def by_check(self, check):
        return [f for f in self.findings if f.check == check]

    def test_every_check_fires(self):
        for check in polysse_lint.CHECKS:
            with self.subTest(check=check):
                self.assertTrue(self.by_check(check),
                                f"{check} found nothing in bad_tree")

    def test_protocol_completeness_catches_unwired_kind(self):
        messages = [f.message for f in self.by_check("protocol-completeness")]
        self.assertEqual(len(messages), 6)  # 5 sites + the range gate
        for needle in ("GhostRequest::Serialize", "GhostRequest::Deserialize",
                       "case MessageKind::kGhost", "never put on the wire",
                       "no corruption drill", "highest-valued"):
            self.assertTrue(any(needle in m for m in messages),
                            f"no finding mentions {needle!r}")
        # All anchored at the enum declaration, where the fix starts.
        self.assertTrue(all(
            f.path == os.path.join("src", "core", "endpoint.h")
            for f in self.by_check("protocol-completeness")))

    def test_alloc_bomb_catches_unguarded_resize(self):
        found = self.by_check("alloc-bomb")
        self.assertEqual([f.path for f in found],
                         [os.path.join("src", "core", "protocol.cc")])
        self.assertIn("wire-decoded `n`", found[0].message)

    def test_layer_dag_catches_undeclared_include(self):
        found = self.by_check("layer-dag")
        self.assertEqual([f.path for f in found],
                         [os.path.join("src", "poly", "bad_include.cc")])
        self.assertIn('"net/', found[0].message)

    def test_lock_discipline_catches_every_direct_call(self):
        found = self.by_check("lock-discipline")
        self.assertEqual(len(found), 4)  # lock, unlock, try_lock, unlock
        self.assertTrue(all(
            f.path == os.path.join("src", "shard", "locks.cc")
            for f in found))

    def test_atomic_ordering_catches_all_bare_access_forms(self):
        found = self.by_check("atomic-ordering")
        self.assertEqual(len(found), 5)  # load, fetch_add, store, ++, +=
        messages = " ".join(f.message for f in found)
        self.assertIn("load", messages)
        self.assertIn("fetch_add", messages)
        self.assertIn("store", messages)
        self.assertIn("++/--", messages)
        self.assertIn("compound assignment", messages)

    def test_findings_have_positive_line_numbers(self):
        self.assertTrue(all(f.line >= 1 for f in self.findings))


class CleanTreeTest(unittest.TestCase):
    def test_clean_tree_has_zero_findings(self):
        findings = findings_for(CLEAN_TREE)
        self.assertEqual([str(f) for f in findings], [])

    def test_suppression_comment_is_load_bearing(self):
        # The clean tree contains one direct unlock() under an allow()
        # comment. Dropping the suppression must surface exactly that site —
        # proving the clean result above comes from the comment, not from
        # the check missing the call.
        locks = os.path.join(CLEAN_TREE, "src", "shard", "locks.cc")
        with open(locks, encoding="utf-8") as f:
            self.assertIn("polysse-lint: allow(lock-discipline)", f.read())
        sf = polysse_lint.SourceFile(CLEAN_TREE,
                                     os.path.join("src", "shard", "locks.cc"))
        suppressed_lines = [
            i for i, _ in enumerate(sf.lines, start=1)
            if sf.suppressed(i, "lock-discipline")]
        self.assertTrue(suppressed_lines)
        # The same comment does not silence unrelated checks.
        self.assertFalse(any(
            sf.suppressed(i, "alloc-bomb") for i in suppressed_lines))


class CycleTreeTest(unittest.TestCase):
    def test_declared_cycle_is_rejected(self):
        findings = findings_for(CYCLE_TREE, checks=("layer-dag",))
        self.assertEqual(len(findings), 1)
        self.assertIn("cycle", findings[0].message)
        self.assertIn("alpha", findings[0].message)
        self.assertIn("beta", findings[0].message)


class DriverTest(unittest.TestCase):
    def test_exit_codes(self):
        self.assertEqual(polysse_lint.main(["--root", CLEAN_TREE]), 0)
        self.assertEqual(polysse_lint.main(["--root", BAD_TREE]), 1)
        self.assertEqual(
            polysse_lint.main(["--root", BAD_TREE, "--checks", "nope"]), 2)
        self.assertEqual(polysse_lint.main(["--root", "/nonexistent"]), 2)
        self.assertEqual(polysse_lint.main(["--list-checks"]), 0)

    def test_check_subset_runs_only_that_check(self):
        findings = findings_for(BAD_TREE, checks=("lock-discipline",))
        self.assertTrue(findings)
        self.assertTrue(all(f.check == "lock-discipline" for f in findings))


if __name__ == "__main__":
    unittest.main(verbosity=2)
