// Fixture: direct mutex lock/unlock outside src/util/ — the exception
// paths between lock() and unlock() leak the mutex; RAII guards are the
// repo rule.
#include <mutex>

namespace polysse {

class Router {
 public:
  void Route() {
    mu_.lock();
    ++routes_;
    mu_.unlock();
  }
  bool TryRoute() {
    if (mu_.try_lock()) {
      ++routes_;
      mu_.unlock();
      return true;
    }
    return false;
  }

 private:
  std::mutex mu_;
  int routes_ = 0;
};

}  // namespace polysse
