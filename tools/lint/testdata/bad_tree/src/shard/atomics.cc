// Fixture: bare atomic operations — every access here takes the implicit
// seq_cst default instead of spelling out its ordering.
#include <atomic>
#include <cstddef>

namespace polysse {

std::atomic<size_t> g_hits{0};
std::atomic<bool> g_stopped{false};

size_t Hits() { return g_hits.load(); }

void RecordHit() { g_hits.fetch_add(1); }

void Stop() { g_stopped.store(true); }

void Bump() { ++g_hits; }

void Charge(size_t n) { g_hits += n; }

}  // namespace polysse
