// Fixture: kGhost is declared but wired through nothing — every
// protocol-completeness requirement fires for it, plus the range-gate
// finding (kGhost is the highest value and socket_server.cc never names it).
#ifndef FIXTURE_CORE_ENDPOINT_H_
#define FIXTURE_CORE_ENDPOINT_H_

#include <cstdint>

namespace polysse {

enum class MessageKind : uint8_t {
  kEval = 1,
  kGhost = 2,
};

}  // namespace polysse

#endif  // FIXTURE_CORE_ENDPOINT_H_
