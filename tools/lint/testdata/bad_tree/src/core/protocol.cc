// Fixture: the known-bad alloc-bomb file — a resize sized by a
// wire-decoded count with no remaining-bytes bound in between.
#include "core/protocol.h"

namespace polysse {

void EvalRequest::Serialize(ByteWriter* out) const {
  out->PutVarint64(node_ids.size());
  for (int32_t id : node_ids) out->PutVarint64(static_cast<uint32_t>(id));
}

Result<EvalRequest> EvalRequest::Deserialize(ByteReader* in) {
  EvalRequest out;
  ASSIGN_OR_RETURN(uint64_t n, in->GetVarint64());
  out.node_ids.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(uint64_t id, in->GetVarint64());
    out.node_ids[i] = static_cast<int32_t>(id);
  }
  return out;
}

}  // namespace polysse
