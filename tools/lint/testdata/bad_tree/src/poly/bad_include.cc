// Fixture: poly declares DEPS util only, so reaching up into net/ is a
// layer-DAG violation.
#include "net/socket_server.h"
#include "util/bytes.h"

namespace polysse {}  // namespace polysse
