// Fixture: the socket client only ever puts kEval on the wire.
#include "core/endpoint.h"

namespace polysse {

void SubmitAll() { Submit(MessageKind::kEval); }

}  // namespace polysse
