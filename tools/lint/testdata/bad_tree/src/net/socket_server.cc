// Fixture: the known-kind range gate still tops out at kEval, so the
// higher-valued kGhost would be rejected as garbage on a real wire.
#include "core/endpoint.h"

namespace polysse {

bool IsKnownKind(uint8_t kind) {
  return kind >= static_cast<uint8_t>(MessageKind::kEval) &&
         kind <= static_cast<uint8_t>(MessageKind::kEval);
}

}  // namespace polysse
