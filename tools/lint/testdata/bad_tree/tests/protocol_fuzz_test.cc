// Fixture: the fuzz battery drills EvalRequest but has never heard of
// GhostRequest.
#include "core/protocol.h"

namespace polysse {
namespace {

void DrillEval() { FuzzMessage<EvalRequest>({}, 0); }

}  // namespace
}  // namespace polysse
