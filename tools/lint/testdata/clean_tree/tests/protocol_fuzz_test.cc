// Fixture: the fuzz battery drills every request codec.
#include "core/protocol.h"

namespace polysse {
namespace {

void DrillAll() {
  FuzzMessage<EvalRequest>({}, 0);
  FuzzMessage<GhostRequest>({}, 1);
}

}  // namespace
}  // namespace polysse
