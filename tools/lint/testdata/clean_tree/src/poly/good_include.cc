// Fixture: poly only reaches into layers its CMakeLists declares.
#include "util/bytes.h"

namespace polysse {}  // namespace polysse
