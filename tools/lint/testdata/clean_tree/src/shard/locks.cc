// Fixture: scoped RAII guards everywhere, plus one deliberately suppressed
// direct unlock to prove the suppression syntax silences exactly one site.
#include <mutex>

namespace polysse {

class Router {
 public:
  void Route() {
    std::lock_guard<std::mutex> guard(mu_);
    ++routes_;
  }
  void Drain() {
    std::unique_lock<std::mutex> guard(mu_);
    ++routes_;
    // Handing the lock back early before a blocking wait is a considered
    // exception here, not an accident.
    guard.unlock();  // polysse-lint: allow(lock-discipline)
  }

 private:
  std::mutex mu_;
  int routes_ = 0;
};

}  // namespace polysse
