// Fixture: every atomic access spells out its memory order.
#include <atomic>
#include <cstddef>

namespace polysse {

std::atomic<size_t> g_hits{0};
std::atomic<bool> g_stopped{false};

size_t Hits() { return g_hits.load(std::memory_order_relaxed); }

void RecordHit() { g_hits.fetch_add(1, std::memory_order_relaxed); }

void Stop() { g_stopped.store(true, std::memory_order_release); }

bool Stopped() { return g_stopped.load(std::memory_order_acquire); }

size_t Swap(size_t next) {
  return g_hits.exchange(next,
                         std::memory_order_acq_rel);
}

}  // namespace polysse
