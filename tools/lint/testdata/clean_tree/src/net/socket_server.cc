// Fixture: the known-kind range gate names the highest-valued kind.
#include "core/endpoint.h"

namespace polysse {

bool IsKnownKind(uint8_t kind) {
  return kind >= static_cast<uint8_t>(MessageKind::kEval) &&
         kind <= static_cast<uint8_t>(MessageKind::kGhost);
}

}  // namespace polysse
