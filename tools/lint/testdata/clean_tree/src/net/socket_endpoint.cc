// Fixture: the socket client puts every kind on the wire.
#include "core/endpoint.h"

namespace polysse {

void SubmitAll() {
  Submit(MessageKind::kEval);
  Submit(MessageKind::kGhost);
}

}  // namespace polysse
