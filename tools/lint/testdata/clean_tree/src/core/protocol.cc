// Fixture: both codecs bound every wire-decoded count against the bytes
// left before allocating — the alloc-bomb check stays quiet.
#include "core/protocol.h"

namespace polysse {

void EvalRequest::Serialize(ByteWriter* out) const {
  out->PutVarint64(node_ids.size());
  for (int32_t id : node_ids) out->PutVarint64(static_cast<uint32_t>(id));
}

Result<EvalRequest> EvalRequest::Deserialize(ByteReader* in) {
  EvalRequest out;
  ASSIGN_OR_RETURN(uint64_t n, in->GetVarint64());
  if (!Plausible(n, *in)) return BadLen("EvalRequest.node_ids");
  out.node_ids.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(uint64_t id, in->GetVarint64());
    out.node_ids[i] = static_cast<int32_t>(id);
  }
  return out;
}

void GhostRequest::Serialize(ByteWriter* out) const {
  out->PutVarint64(payload.size());
  for (uint8_t b : payload) out->PutU8(b);
}

Result<GhostRequest> GhostRequest::Deserialize(ByteReader* in) {
  GhostRequest out;
  ASSIGN_OR_RETURN(uint64_t n, in->GetVarint64());
  if (n > in->remaining())
    return Status::Corruption("GhostRequest: count exceeds remaining bytes");
  out.payload.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(uint8_t b, in->GetU8());
    out.payload.push_back(b);
  }
  return out;
}

}  // namespace polysse
