// Fixture: every MessageKind below is wired through codec, dispatch,
// socket client, range gate and fuzz battery — zero findings expected.
#ifndef FIXTURE_CLEAN_CORE_ENDPOINT_H_
#define FIXTURE_CLEAN_CORE_ENDPOINT_H_

#include <cstdint>

namespace polysse {

enum class MessageKind : uint8_t {
  kEval = 1,
  kGhost = 2,
};

}  // namespace polysse

#endif  // FIXTURE_CLEAN_CORE_ENDPOINT_H_
