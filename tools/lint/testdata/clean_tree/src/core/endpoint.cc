// Fixture: DispatchSerialized covers every declared kind.
#include "core/endpoint.h"

namespace polysse {

Result<std::vector<uint8_t>> DispatchSerialized(
    ServerHandler* handler, MessageKind kind,
    std::span<const uint8_t> request_bytes) {
  switch (kind) {
    case MessageKind::kEval: {
      return std::vector<uint8_t>{};
    }
    case MessageKind::kGhost: {
      return std::vector<uint8_t>{};
    }
    default:
      return Status::Corruption("unknown message kind");
  }
}

}  // namespace polysse
