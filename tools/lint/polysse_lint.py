#!/usr/bin/env python3
"""polysse-lint: repo-invariant static analysis for the polysse tree.

Five checks, each encoding a cross-cutting invariant that grew out of the
PR history and that nothing in the compiler enforces:

  protocol-completeness  every MessageKind enumerator is wired through the
                         codec (protocol.cc), the serialized dispatch
                         (endpoint.cc), the socket client (socket_endpoint.cc)
                         and the fuzz battery (protocol_fuzz_test.cc); the
                         highest-valued kind must appear in socket_server.cc,
                         whose known-kind gate is a closed range.
  alloc-bomb             inside deserializers, a resize()/reserve() driven by
                         a wire-decoded count must be preceded by a
                         remaining-bytes bound (Plausible()/remaining()) so a
                         corrupt length can never become a giant allocation.
  layer-dag              #include edges between src/<layer>/ directories must
                         match the direct DEPS declared in each layer's
                         CMakeLists.txt, and the declared graph must be
                         acyclic.
  lock-discipline        no direct .lock()/.unlock()/.try_lock() calls
                         outside src/util/ — scoped RAII guards only.
  atomic-ordering        every load()/store()/exchange()/fetch_*() on a
                         std::atomic, and every ++/--/op= on one, must spell
                         out its std::memory_order (all knobs are relaxed by
                         decision, not by accident).

Findings print as `path:line: [check] message` and exit status 1. A finding
is suppressed by putting `// polysse-lint: allow(<check>)` on the offending
line or the line directly above it.

Stdlib-only; run as `python3 tools/lint/polysse_lint.py [--root DIR]`.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass

CHECKS = (
    "protocol-completeness",
    "alloc-bomb",
    "layer-dag",
    "lock-discipline",
    "atomic-ordering",
)

SUPPRESS_RE = re.compile(r"polysse-lint:\s*allow\(([a-z\-,\s]+)\)")


@dataclass
class Finding:
    path: str  # repo-relative
    line: int  # 1-based
    check: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


class SourceFile:
    """One file plus the bookkeeping every check shares."""

    def __init__(self, root: str, relpath: str):
        self.relpath = relpath
        with open(os.path.join(root, relpath), encoding="utf-8") as f:
            self.lines = f.read().splitlines()

    def suppressed(self, lineno: int, check: str) -> bool:
        """True when line `lineno` (1-based) or the one above allows `check`."""
        for idx in (lineno - 1, lineno - 2):
            if 0 <= idx < len(self.lines):
                m = SUPPRESS_RE.search(self.lines[idx])
                if m and check in [c.strip() for c in m.group(1).split(",")]:
                    return True
        return False

    def code_lines(self):
        """Yields (lineno, text) with comments and string literals blanked,
        so patterns never match inside either."""
        yield from self._stripped(blank_strings=True)

    def raw_code_lines(self):
        """Like code_lines() but keeps string literals — for patterns that
        must see them (e.g. #include paths)."""
        yield from self._stripped(blank_strings=False)

    def _stripped(self, blank_strings: bool):
        in_block = False
        for i, raw in enumerate(self.lines, start=1):
            line = raw
            if in_block:
                end = line.find("*/")
                if end < 0:
                    yield i, ""
                    continue
                line = " " * (end + 2) + line[end + 2 :]
                in_block = False
            if blank_strings:
                # Naive but enough for this codebase: no multi-line raw
                # strings in lint scope.
                line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
            start = line.find("/*")
            while start >= 0:
                end = line.find("*/", start + 2)
                if end < 0:
                    line = line[:start]
                    in_block = True
                    break
                line = line[:start] + " " * (end + 2 - start) + line[end + 2 :]
                start = line.find("/*")
            cut = line.find("//")
            if cut >= 0:
                line = line[:cut]
            yield i, line


def walk_sources(root: str, subdir: str, exts=(".h", ".cc")):
    base = os.path.join(root, subdir)
    for dirpath, _, names in os.walk(base):
        for name in sorted(names):
            if name.endswith(exts):
                yield os.path.relpath(os.path.join(dirpath, name), root)


def emit(findings, sf: SourceFile, lineno: int, check: str, message: str):
    if not sf.suppressed(lineno, check):
        findings.append(Finding(sf.relpath, lineno, check, message))


# --------------------------------------------------- protocol-completeness --

ENUM_RE = re.compile(r"enum\s+class\s+MessageKind\s*:\s*uint8_t\s*\{")
ENUMERATOR_RE = re.compile(r"^\s*(k\w+)\s*=\s*(\d+)\s*,?")

# Everywhere a message kind must be wired through, relative to the root.
PROTOCOL_SITES = {
    "codec": "src/core/protocol.cc",
    "dispatch": "src/core/endpoint.cc",
    "socket client": "src/net/socket_endpoint.cc",
    "fuzz battery": "tests/protocol_fuzz_test.cc",
}
RANGE_GATE = "src/net/socket_server.cc"


def find_message_kind_enum(root: str):
    """Returns (SourceFile, [(name, value, lineno)]) or (None, [])."""
    for rel in walk_sources(root, "src/core", exts=(".h",)):
        sf = SourceFile(root, rel)
        enum_open = None
        kinds = []
        for lineno, line in sf.code_lines():
            if enum_open is None:
                if ENUM_RE.search(line):
                    enum_open = lineno
                continue
            if "}" in line:
                break
            m = ENUMERATOR_RE.match(line)
            if m:
                kinds.append((m.group(1), int(m.group(2)), lineno))
        if enum_open is not None:
            return sf, kinds
    return None, []


def check_protocol_completeness(root: str):
    findings = []
    sf, kinds = find_message_kind_enum(root)
    if sf is None:
        findings.append(
            Finding("src/core", 1, "protocol-completeness",
                    "no `enum class MessageKind : uint8_t` found under "
                    "src/core/*.h"))
        return findings
    if not kinds:
        findings.append(
            Finding(sf.relpath, 1, "protocol-completeness",
                    "MessageKind enum has no parsable `kName = N` entries"))
        return findings

    contents = {}
    for label, rel in {**PROTOCOL_SITES, "range gate": RANGE_GATE}.items():
        if os.path.exists(os.path.join(root, rel)):
            # Comment-stripped: a comment that merely mentions a kind is
            # not wiring.
            site = SourceFile(root, rel)
            contents[label] = "\n".join(
                line for _, line in site.raw_code_lines())
        else:
            contents[label] = None

    for name, _value, lineno in kinds:
        stem = name[1:]  # kEval -> Eval
        req = f"{stem}Request"
        requirements = [
            ("codec", f"{req}::Serialize",
             f"{req}::Serialize not defined in {PROTOCOL_SITES['codec']}"),
            ("codec", f"{req}::Deserialize",
             f"{req}::Deserialize not defined in {PROTOCOL_SITES['codec']}"),
            ("dispatch", f"case MessageKind::{name}",
             f"no `case MessageKind::{name}` in DispatchSerialized "
             f"({PROTOCOL_SITES['dispatch']})"),
            ("socket client", f"MessageKind::{name}",
             f"MessageKind::{name} never put on the wire by "
             f"{PROTOCOL_SITES['socket client']}"),
            ("fuzz battery", req,
             f"{req} has no corruption drill in "
             f"{PROTOCOL_SITES['fuzz battery']}"),
        ]
        for label, needle, message in requirements:
            text = contents[label]
            if text is None:
                emit(findings, sf, lineno, "protocol-completeness",
                     f"{name}: expected site file missing "
                     f"({PROTOCOL_SITES[label]})")
            elif needle not in text:
                emit(findings, sf, lineno, "protocol-completeness",
                     f"{name}: {message}")

    # The socket server accepts kinds by closed range [kEval, <max>]; adding
    # a kind without raising the bound silently drops it on the floor.
    max_kind = max(kinds, key=lambda k: k[1])
    gate = contents["range gate"]
    if gate is None:
        emit(findings, sf, max_kind[2], "protocol-completeness",
             f"range-gate file missing ({RANGE_GATE})")
    elif max_kind[0] not in gate:
        emit(findings, sf, max_kind[2], "protocol-completeness",
             f"{max_kind[0]} is the highest-valued MessageKind but never "
             f"appears in {RANGE_GATE} — its known-kind range gate would "
             f"reject the new kind as garbage")
    return findings


# ------------------------------------------------------------- alloc-bomb --

# Integer fields pulled off the wire. GetLengthPrefixed is excluded: it
# bounds the claimed length against remaining() internally.
DECODE_RE = re.compile(
    r"ASSIGN_OR_RETURN\(\s*(?:[\w:<>]+\s+)?(\w+)\s*,\s*"
    r"[\w.\->]+Get(?:Varint64|VarintSigned64|U8|U16|U32|U64)\s*\(")
PLAIN_DECODE_RE = re.compile(
    r"\b(\w+)\s*=\s*\*?[\w.\->]+Get(?:Varint64|VarintSigned64|U8|U16|U32|U64)"
    r"\s*\(")
ALLOC_RE = re.compile(r"[\w\]\)]\s*(?:\.|->)\s*(?:resize|reserve)\s*\(\s*(\w+)\s*\)")
GUARD_TOKENS = ("Plausible", "remaining")


def check_alloc_bomb(root: str):
    findings = []
    for rel in walk_sources(root, "src"):
        sf = SourceFile(root, rel)
        decoded = {}  # name -> guarded?
        for lineno, line in sf.code_lines():
            if line.startswith("}"):  # end of a top-level function
                decoded.clear()
                continue
            for regex in (DECODE_RE, PLAIN_DECODE_RE):
                for m in regex.finditer(line):
                    decoded[m.group(1)] = False
            if any(tok in line for tok in GUARD_TOKENS):
                for name in decoded:
                    if re.search(rf"\b{re.escape(name)}\b", line):
                        decoded[name] = True
            for m in ALLOC_RE.finditer(line):
                arg = m.group(1)
                if arg in decoded and not decoded[arg]:
                    emit(findings, sf, lineno, "alloc-bomb",
                         f"allocation sized by wire-decoded `{arg}` without a "
                         f"prior remaining-bytes bound (use Plausible() or "
                         f"compare against remaining() first)")
    return findings


# -------------------------------------------------------------- layer-dag --

ADD_LAYER_RE = re.compile(r"polysse_add_layer\s*\(\s*(\w+)([^)]*)\)", re.S)
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"(\w+)/')


def parse_layer_graph(root: str):
    """Returns {layer: set(direct deps)} from each src/*/CMakeLists.txt."""
    graph = {}
    src = os.path.join(root, "src")
    if not os.path.isdir(src):
        return graph
    for entry in sorted(os.listdir(src)):
        cml = os.path.join(src, entry, "CMakeLists.txt")
        if not os.path.isfile(cml):
            continue
        text = "\n".join(
            line.split("#", 1)[0] for line in
            open(cml, encoding="utf-8").read().splitlines())
        for m in ADD_LAYER_RE.finditer(text):
            name, body = m.group(1), m.group(2)
            deps = set()
            tokens = body.split()
            section = None
            for tok in tokens:
                if tok in ("SOURCES", "DEPS"):
                    section = tok
                elif section == "DEPS":
                    deps.add(tok)
            graph[name] = deps
    return graph


def check_layer_dag(root: str):
    findings = []
    graph = parse_layer_graph(root)
    if not graph:
        return findings

    # The declared graph itself must be acyclic.
    WHITE, GREY, BLACK = 0, 1, 2
    color = {layer: WHITE for layer in graph}

    def dfs(layer, stack):
        color[layer] = GREY
        for dep in sorted(graph.get(layer, ())):
            if dep not in graph:
                continue
            if color[dep] == GREY:
                cycle = " -> ".join(stack + [layer, dep])
                findings.append(
                    Finding(f"src/{layer}/CMakeLists.txt", 1, "layer-dag",
                            f"declared dependency cycle: {cycle}"))
            elif color[dep] == WHITE:
                dfs(dep, stack + [layer])
        color[layer] = BLACK

    for layer in sorted(graph):
        if color[layer] == WHITE:
            dfs(layer, [])

    for layer in sorted(graph):
        allowed = graph[layer] | {layer}
        for rel in walk_sources(root, os.path.join("src", layer)):
            sf = SourceFile(root, rel)
            for lineno, line in sf.raw_code_lines():
                m = INCLUDE_RE.match(line)
                if not m:
                    continue
                target = m.group(1)
                if target in graph and target not in allowed:
                    emit(findings, sf, lineno, "layer-dag",
                         f"src/{layer}/ includes \"{target}/...\" but "
                         f"`{layer}` does not list `{target}` in DEPS "
                         f"(src/{layer}/CMakeLists.txt)")
    return findings


# -------------------------------------------------------- lock-discipline --

LOCK_CALL_RE = re.compile(r"[\w\]\)](?:\.|->)\s*(lock|unlock|try_lock)\s*\(\s*\)")


def check_lock_discipline(root: str):
    findings = []
    for rel in walk_sources(root, "src"):
        if rel.replace(os.sep, "/").startswith("src/util/"):
            continue  # the RAII primitives themselves live here
        sf = SourceFile(root, rel)
        for lineno, line in sf.code_lines():
            for m in LOCK_CALL_RE.finditer(line):
                emit(findings, sf, lineno, "lock-discipline",
                     f"direct .{m.group(1)}() call — use a scoped RAII guard "
                     f"(std::lock_guard / std::unique_lock / "
                     f"std::shared_lock) instead")
    return findings


# -------------------------------------------------------- atomic-ordering --

ATOMIC_DECL_RE = re.compile(r"std::atomic\s*<[^;{=>]*>\s+(\w+)\s*[;{=]")
ATOMIC_DECL2_RE = re.compile(
    r"std::atomic_(?:bool|char|int|uint|long|llong|size_t|ptrdiff_t|flag)"
    r"\s+(\w+)\s*[;{=]")
ATOMIC_OP_RE = re.compile(
    r"\b(\w+)\s*(?:\.|->)\s*"
    r"(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|fetch_xor|"
    r"compare_exchange_weak|compare_exchange_strong)\s*\(")
ATOMIC_INC_RE = re.compile(r"(?:\+\+|--)\s*(\w+)\b|\b(\w+)\s*(?:\+\+|--)")
ATOMIC_COMPOUND_RE = re.compile(r"\b(\w+)\s*[+\-|&^]=[^=]")


SRC_INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([\w/.\-]+)"')


def collect_atomic_scopes(root: str):
    """Atomic variable names visible per file: the names a file declares
    itself plus those declared in the src headers it (transitively)
    includes. Scoping by the include graph keeps a plain field that shares
    a name with some other file's atomic (e.g. `next`) from being flagged."""
    declared = {}  # rel -> set of names
    includes = {}  # rel -> set of src-relative header paths
    files = list(walk_sources(root, "src"))
    for rel in files:
        sf = SourceFile(root, rel)
        names = set()
        incs = set()
        for _, line in sf.code_lines():
            for regex in (ATOMIC_DECL_RE, ATOMIC_DECL2_RE):
                for m in regex.finditer(line):
                    names.add(m.group(1))
        for _, line in sf.raw_code_lines():
            m = SRC_INCLUDE_RE.match(line)
            if m:
                incs.add(os.path.join("src", m.group(1)))
        declared[rel] = names
        includes[rel] = incs

    scopes = {}
    for rel in files:
        seen = set()
        stack = [rel]
        visible = set()
        while stack:
            cur = stack.pop()
            if cur in seen or cur not in declared:
                continue
            seen.add(cur)
            visible |= declared[cur]
            stack.extend(includes[cur])
        scopes[rel] = visible
    return scopes


def call_args(sf: SourceFile, lineno: int, col: int) -> str:
    """The argument text of the call whose '(' sits at (lineno, col),
    joined across up to 6 lines."""
    text = sf.lines[lineno - 1][col:]
    for extra in range(lineno, min(lineno + 6, len(sf.lines))):
        depth = 0
        out = []
        for ch in text:
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    return "".join(out)
            if depth >= 1:
                out.append(ch)
        text += " " + sf.lines[extra]
    return text


def check_atomic_ordering(root: str):
    findings = []
    scopes = collect_atomic_scopes(root)
    for rel in walk_sources(root, "src"):
        atomics = scopes.get(rel, set())
        if not atomics:
            continue
        sf = SourceFile(root, rel)
        for lineno, line in sf.code_lines():
            for m in ATOMIC_OP_RE.finditer(line):
                name, op = m.group(1), m.group(2)
                if name not in atomics:
                    continue
                args = call_args(sf, lineno, m.end() - 1)
                if "memory_order" not in args:
                    emit(findings, sf, lineno, "atomic-ordering",
                         f"`{name}.{op}()` without an explicit "
                         f"std::memory_order argument — spell out the "
                         f"ordering (relaxed is a decision, not a default)")
            for m in ATOMIC_INC_RE.finditer(line):
                name = m.group(1) or m.group(2)
                if name in atomics:
                    emit(findings, sf, lineno, "atomic-ordering",
                         f"++/-- on atomic `{name}` is an implicit seq_cst "
                         f"RMW — use fetch_add/fetch_sub with an explicit "
                         f"std::memory_order")
            for m in ATOMIC_COMPOUND_RE.finditer(line):
                name = m.group(1)
                if name in atomics:
                    emit(findings, sf, lineno, "atomic-ordering",
                         f"compound assignment on atomic `{name}` is an "
                         f"implicit seq_cst RMW — use fetch_* with an "
                         f"explicit std::memory_order")
    return findings


# ------------------------------------------------------------------ driver --

CHECK_FUNCS = {
    "protocol-completeness": check_protocol_completeness,
    "alloc-bomb": check_alloc_bomb,
    "layer-dag": check_layer_dag,
    "lock-discipline": check_lock_discipline,
    "atomic-ordering": check_atomic_ordering,
}


def run_checks(root: str, checks=CHECKS):
    findings = []
    for check in checks:
        findings.extend(CHECK_FUNCS[check](root))
    findings.sort(key=lambda f: (f.path, f.line, f.check))
    return findings


def default_root() -> str:
    return os.path.abspath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=default_root(),
                        help="repo root to analyze (default: two levels up "
                             "from this script)")
    parser.add_argument("--checks", default=",".join(CHECKS),
                        help="comma-separated subset of checks to run")
    parser.add_argument("--list-checks", action="store_true",
                        help="print the available checks and exit")
    args = parser.parse_args(argv)

    if args.list_checks:
        for check in CHECKS:
            print(check)
        return 0

    selected = [c.strip() for c in args.checks.split(",") if c.strip()]
    for check in selected:
        if check not in CHECK_FUNCS:
            print(f"polysse-lint: unknown check '{check}' "
                  f"(see --list-checks)", file=sys.stderr)
            return 2
    if not os.path.isdir(os.path.join(args.root, "src")):
        print(f"polysse-lint: no src/ under --root {args.root}",
              file=sys.stderr)
        return 2

    findings = run_checks(args.root, selected)
    for f in findings:
        print(f)
    if findings:
        print(f"polysse-lint: {len(findings)} finding(s) across "
              f"{len({f.path for f in findings})} file(s)", file=sys.stderr)
        return 1
    print(f"polysse-lint: clean ({', '.join(selected)})", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
