# polysse_add_layer(<name> SOURCES a.cc b.cc [DEPS util nt ...])
#
# Declares the static library polysse_<name> (alias polysse::<name>) for one
# src/<name>/ layer, wiring in the shared build flags and the src/ include
# root so headers are spelled "layer/header.h" everywhere. Header-only
# layers pass no SOURCES and become INTERFACE libraries.
function(polysse_add_layer name)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})

  set(_target polysse_${name})
  if(ARG_SOURCES)
    add_library(${_target} STATIC ${ARG_SOURCES})
    target_include_directories(${_target}
      PUBLIC ${CMAKE_SOURCE_DIR}/src)
    target_link_libraries(${_target} PRIVATE polysse::build_flags)
    if(POLYSSE_CLANG_TIDY)
      # Layers only: tests and benches lean on gtest/benchmark macros that
      # the curated profile was never tuned for.
      set_target_properties(${_target} PROPERTIES
        CXX_CLANG_TIDY "${POLYSSE_CLANG_TIDY_EXE}")
    endif()
    set(_scope PUBLIC)
  else()
    add_library(${_target} INTERFACE)
    target_include_directories(${_target}
      INTERFACE ${CMAKE_SOURCE_DIR}/src)
    set(_scope INTERFACE)
  endif()
  add_library(polysse::${name} ALIAS ${_target})

  foreach(_dep IN LISTS ARG_DEPS)
    target_link_libraries(${_target} ${_scope} polysse::${_dep})
  endforeach()
endfunction()
