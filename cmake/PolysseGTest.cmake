# Resolves GoogleTest in preference order:
#   1. the distro's CMake config package (pinned paths first so a conda or
#      other toolchain on PATH cannot shadow the system libstdc++ ABI),
#   2. any GTest config/module find_package can see,
#   3. the Debian/Ubuntu source tree under /usr/src/googletest,
#   4. FetchContent from GitHub (needs network; last resort).
# Exposes GTest::gtest and GTest::gtest_main.

if(TARGET GTest::gtest_main)
  return()
endif()

find_package(GTest CONFIG QUIET
  PATHS /usr/lib/x86_64-linux-gnu/cmake/GTest
        /usr/lib64/cmake/GTest
        /usr/lib/cmake/GTest
  NO_DEFAULT_PATH)

if(NOT GTest_FOUND)
  find_package(GTest QUIET)
endif()

if(NOT GTest_FOUND AND EXISTS /usr/src/googletest/CMakeLists.txt)
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  add_subdirectory(/usr/src/googletest
    ${CMAKE_BINARY_DIR}/_deps/system-googletest EXCLUDE_FROM_ALL)
  if(NOT TARGET GTest::gtest_main)
    add_library(GTest::gtest ALIAS gtest)
    add_library(GTest::gtest_main ALIAS gtest_main)
  endif()
  set(GTest_FOUND TRUE)
endif()

if(NOT GTest_FOUND)
  include(FetchContent)
  FetchContent_Declare(googletest
    URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
    DOWNLOAD_EXTRACT_TIMESTAMP TRUE)
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
  FetchContent_MakeAvailable(googletest)
endif()
