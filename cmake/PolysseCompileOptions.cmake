# Shared compile/link flags for every polysse target, carried by the
# INTERFACE target polysse::build_flags so per-layer CMakeLists stay flat.

add_library(polysse_build_flags INTERFACE)
add_library(polysse::build_flags ALIAS polysse_build_flags)

target_compile_features(polysse_build_flags INTERFACE cxx_std_20)

if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
  target_compile_options(polysse_build_flags INTERFACE -Wall -Wextra)
  if(POLYSSE_WERROR)
    target_compile_options(polysse_build_flags INTERFACE -Werror)
  endif()
elseif(MSVC)
  target_compile_options(polysse_build_flags INTERFACE /W4)
  if(POLYSSE_WERROR)
    target_compile_options(polysse_build_flags INTERFACE /WX)
  endif()
endif()

# Sanitizers: -DPOLYSSE_SANITIZE=address;undefined (or "address,undefined").
# GCC/Clang flag syntax only; MSVC spells these /fsanitize: and is not wired.
if(POLYSSE_SANITIZE AND CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
  string(REPLACE "," ";" _polysse_sans "${POLYSSE_SANITIZE}")
  foreach(_san IN LISTS _polysse_sans)
    target_compile_options(polysse_build_flags INTERFACE
      -fsanitize=${_san} -fno-omit-frame-pointer)
    target_link_options(polysse_build_flags INTERFACE -fsanitize=${_san})
  endforeach()
endif()
