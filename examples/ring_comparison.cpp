// Side-by-side comparison of the paper's two rings on the same document:
// F_p[x]/(x^{p-1}-1) vs Z[x]/(x^2+1) — storage, query cost, and the
// Z-ring's evaluation-filter subtleties (safe tag values).
//
//   $ ./ring_comparison
#include <cstdio>

#include "core/engine.h"
#include "core/storage_model.h"
#include "xml/xml_generator.h"

int main() {
  using namespace polysse;

  XmlGeneratorOptions gen;
  gen.num_nodes = 200;
  gen.tag_alphabet = 12;
  gen.max_fanout = 4;
  gen.seed = 42;
  XmlNode doc = GenerateXmlTree(gen);
  DeterministicPrf seed = DeterministicPrf::FromString("ring-comparison");

  auto fp_dep = FpEngine::Outsource(doc, seed);
  auto z_dep = ZEngine::Outsource(doc, seed);
  if (!fp_dep.ok() || !z_dep.ok()) {
    std::fprintf(stderr, "outsource failed\n");
    return 1;
  }

  StorageReport fp_report =
      MeasureStorage((*fp_dep)->ring(), doc, (*fp_dep)->store());
  StorageReport z_report = MeasureStorage((*z_dep)->ring(), doc,
                                          (*z_dep)->store(),
                                          (*fp_dep)->ring().p());
  std::printf("%s\n%s\n%s\n\n", StorageReportHeader().c_str(),
              StorageReportRow(fp_report, "Fp ring").c_str(),
              StorageReportRow(z_report, "Z[x]/(x^2+1)").c_str());

  std::printf("%-10s | %10s %12s | %10s %12s\n", "query", "Fp:visited",
              "Fp:bytes_dn", "Z:visited", "Z:bytes_dn");
  for (const std::string& tag : doc.DistinctTags()) {
    auto fr = (*fp_dep)->Lookup(tag, VerifyMode::kVerified);
    auto zr = (*z_dep)->Lookup(tag, VerifyMode::kVerified);
    if (!fr.ok() || !zr.ok()) continue;
    std::printf("//%-8s | %10zu %12zu | %10zu %12zu   (matches: %zu)\n",
                tag.c_str(), fr->stats.nodes_visited,
                fr->stats.transport.bytes_down, zr->stats.nodes_visited,
                zr->stats.transport.bytes_down, fr->matches.size());
    if (fr->matches.size() != zr->matches.size()) {
      std::printf("  *** rings disagree — should never happen\n");
      return 1;
    }
  }

  std::printf("\nnote how the Z-ring stores only deg(r)=2 coefficients per "
              "node but each coefficient\ngrows with the tree (max %zu bits "
              "here), while the Fp ring stores p-1 = %llu small ones.\n",
              z_report.max_coeff_bits,
              static_cast<unsigned long long>((*fp_dep)->ring().p() - 1));
  return 0;
}
