// Outsourced medical records: a realistic scenario for the paper's scheme.
// A hospital outsources patient records to an untrusted cloud store through
// the Engine facade, runs XPath queries over the encrypted tree, compares
// both §4.3 evaluation strategies, and demonstrates that a server tampering
// with its responses is caught.
//
//   $ ./medical_records [num_patients]
#include <cstdio>
#include <cstdlib>

#include "core/engine.h"
#include "xml/xml_generator.h"

int main(int argc, char** argv) {
  using namespace polysse;
  const size_t patients = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 50;

  XmlNode doc = MakeMedicalRecordsDocument(patients, /*seed=*/2004);
  std::printf("hospital document: %zu elements, %zu distinct tags, height %zu\n",
              doc.SubtreeSize(), doc.DistinctTagCount(), doc.Height());

  DeterministicPrf seed = DeterministicPrf::FromString("hospital-master-key");
  auto engine = FpEngine::Outsource(doc, seed);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  const char* queries[] = {
      "//prescription",
      "//patient/record/prescription/drug",
      "//record//test",
      "/hospital/patient/insurance",
  };
  std::printf("\n%-40s %8s %10s %10s %10s\n", "query", "matches",
              "visited", "evals", "bytes_down");
  for (const char* q : queries) {
    for (XPathStrategy strategy :
         {XPathStrategy::kLeftToRight, XPathStrategy::kAllAtOnce}) {
      auto r = (*engine)->RunXPath(q, strategy, VerifyMode::kVerified);
      if (!r.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
      std::printf("%-34s %-5s %8zu %10zu %10zu %10zu\n", q,
                  strategy == XPathStrategy::kLeftToRight ? "(l2r)" : "(aao)",
                  r->matches.size(), r->stats.nodes_visited,
                  r->stats.server_evals, r->stats.transport.bytes_down);
    }
  }

  // Bandwidth trade-off of the trusted-server mode (§4.3 closing remark).
  auto verified = (*engine)->Lookup("drug", VerifyMode::kVerified);
  auto trusted = (*engine)->Lookup("drug", VerifyMode::kTrustedConstOnly);
  if (verified.ok() && trusted.ok()) {
    std::printf("\n//drug with full verification: %zu B down; trusted "
                "const-only: %zu B down (%.1fx less, but no Eq. 3 checks)\n",
                verified->stats.transport.bytes_down,
                trusted->stats.transport.bytes_down,
                static_cast<double>(verified->stats.transport.bytes_down) /
                    static_cast<double>(
                        std::max<size_t>(1, trusted->stats.transport.bytes_down)));
  }

  // A malicious server rewrites a fetched share in flight without changing
  // the evaluations the pruning sees: verified mode refuses the answer.
  auto e = (*engine)->client().tag_map().Value("patient");
  if (e.ok()) {
    const FpCyclotomicRing& ring = (*engine)->ring();
    auto taint = ring.XMinus(*e);
    if (taint.ok()) {
      FaultConfig cheat;
      cheat.tamper_fetch = [&ring, &taint](FetchResponse& resp) {
        for (FetchEntry& entry : resp.entries) {
          if (entry.node_id != 1) continue;
          ByteReader r(entry.payload);
          auto poly = ring.Deserialize(&r);
          if (!poly.ok()) continue;
          ByteWriter w;
          ring.Serialize(ring.Add(*poly, *taint), &w);
          entry.payload = w.Take();
        }
      };
      (*engine)->InjectFaults(0, cheat);
      auto cheated = (*engine)->Lookup("patient", VerifyMode::kVerified);
      std::printf("\nafter server tampering, verified lookup says: %s\n",
                  cheated.ok() ? "(undetected?!)"
                               : cheated.status().ToString().c_str());
    }
  }
  return 0;
}
