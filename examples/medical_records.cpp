// Outsourced medical records: a realistic scenario for the paper's scheme.
// A hospital outsources patient records to an untrusted cloud store, then
// runs XPath queries over the encrypted tree, compares both §4.3 evaluation
// strategies, and demonstrates that a tampering server is caught.
//
//   $ ./medical_records [num_patients]
#include <cstdio>
#include <cstdlib>

#include "core/outsource.h"
#include "core/query_session.h"
#include "xml/xml_generator.h"

int main(int argc, char** argv) {
  using namespace polysse;
  const size_t patients = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 50;

  XmlNode doc = MakeMedicalRecordsDocument(patients, /*seed=*/2004);
  std::printf("hospital document: %zu elements, %zu distinct tags, height %zu\n",
              doc.SubtreeSize(), doc.DistinctTagCount(), doc.Height());

  DeterministicPrf seed = DeterministicPrf::FromString("hospital-master-key");
  auto dep = OutsourceFp(doc, seed);
  if (!dep.ok()) {
    std::fprintf(stderr, "%s\n", dep.status().ToString().c_str());
    return 1;
  }
  QuerySession<FpCyclotomicRing> session(&dep->client, &dep->server);

  const char* queries[] = {
      "//prescription",
      "//patient/record/prescription/drug",
      "//record//test",
      "/hospital/patient/insurance",
  };
  std::printf("\n%-40s %8s %10s %10s %10s\n", "query", "matches",
              "visited", "evals", "bytes_down");
  for (const char* q : queries) {
    auto query = XPathQuery::Parse(q);
    if (!query.ok()) continue;
    for (XPathStrategy strategy :
         {XPathStrategy::kLeftToRight, XPathStrategy::kAllAtOnce}) {
      auto r = session.EvaluateXPath(*query, strategy, VerifyMode::kVerified);
      if (!r.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
      std::printf("%-34s %-5s %8zu %10zu %10zu %10zu\n", q,
                  strategy == XPathStrategy::kLeftToRight ? "(l2r)" : "(aao)",
                  r->matches.size(), r->stats.nodes_visited,
                  r->stats.server_evals, r->stats.transport.bytes_down);
    }
  }

  // Bandwidth trade-off of the trusted-server mode (§4.3 closing remark).
  auto verified = session.Lookup("drug", VerifyMode::kVerified);
  auto trusted = session.Lookup("drug", VerifyMode::kTrustedConstOnly);
  if (verified.ok() && trusted.ok()) {
    std::printf("\n//drug with full verification: %zu B down; trusted "
                "const-only: %zu B down (%.1fx less, but no Eq. 3 checks)\n",
                verified->stats.transport.bytes_down,
                trusted->stats.transport.bytes_down,
                static_cast<double>(verified->stats.transport.bytes_down) /
                    static_cast<double>(
                        std::max<size_t>(1, trusted->stats.transport.bytes_down)));
  }

  // A malicious server flips part of a stored polynomial without changing
  // the evaluations the pruning sees: verified mode refuses the answer.
  auto& tree = dep->server.mutable_tree_for_testing();
  auto e = dep->client.tag_map().Value("patient");
  if (e.ok()) {
    auto taint = dep->ring.XMinus(*e);
    if (taint.ok()) {
      tree.nodes[1].poly = dep->ring.Add(tree.nodes[1].poly, *taint);
      auto cheated = session.Lookup("patient", VerifyMode::kVerified);
      std::printf("\nafter server tampering, verified lookup says: %s\n",
                  cheated.ok() ? "(undetected?!)"
                               : cheated.status().ToString().c_str());
    }
  }
  return 0;
}
