// A small end-to-end command line tool around the library — the workflow a
// real deployment would script:
//
//   polysse_cli outsource <doc.xml> <store.bin> <client.key> [passphrase]
//       parse the document, split it, write the server store and the
//       client's secret key file (seed + private tag map)
//
//   polysse_cli query <store.bin> <client.key> <xpath> [--trusted|--optimistic]
//       run an XPath query against the store with the client key
//
//   polysse_cli inspect <store.bin>
//       print what an attacker with the server file alone can see
#include <cstdio>
#include <cstring>
#include <string>

#include "core/outsource.h"
#include "core/persistence.h"
#include "core/query_session.h"
#include "core/sharing.h"
#include "xml/xml_parser.h"

using namespace polysse;

namespace {

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

int CmdOutsource(const std::string& xml_path, const std::string& store_path,
                 const std::string& key_path, const std::string& passphrase) {
  auto xml_bytes = ReadFileBytes(xml_path);
  if (!xml_bytes.ok()) return Fail(xml_bytes.status());
  auto doc = ParseXml(std::string(xml_bytes->begin(), xml_bytes->end()));
  if (!doc.ok()) return Fail(doc.status());

  DeterministicPrf seed = passphrase.empty()
                              ? DeterministicPrf(RandomSeed())
                              : DeterministicPrf::FromString(passphrase);
  auto dep = OutsourceFp(*doc, seed);
  if (!dep.ok()) return Fail(dep.status());

  ByteWriter store_bytes;
  SaveServerStore(dep->server, &store_bytes);
  if (Status s = WriteFileBytes(store_path, store_bytes.span()); !s.ok())
    return Fail(s);

  ClientSecretFile key;
  key.seed = seed.seed();
  key.tag_map = dep->client.tag_map();
  ByteWriter key_bytes;
  key.Serialize(&key_bytes);
  if (Status s = WriteFileBytes(key_path, key_bytes.span()); !s.ok())
    return Fail(s);

  std::printf("outsourced %zu elements (p = %llu)\n", dep->server.size(),
              static_cast<unsigned long long>(dep->ring.p()));
  std::printf("  server store : %s (%zu bytes — safe to host untrusted)\n",
              store_path.c_str(), store_bytes.size());
  std::printf("  client key   : %s (%zu bytes — keep secret)\n",
              key_path.c_str(), key_bytes.size());
  return 0;
}

int CmdQuery(const std::string& store_path, const std::string& key_path,
             const std::string& xpath, VerifyMode mode) {
  auto store_bytes = ReadFileBytes(store_path);
  if (!store_bytes.ok()) return Fail(store_bytes.status());
  ByteReader store_reader(*store_bytes);
  auto server = LoadFpServerStore(&store_reader);
  if (!server.ok()) return Fail(server.status());

  auto key_bytes = ReadFileBytes(key_path);
  if (!key_bytes.ok()) return Fail(key_bytes.status());
  ByteReader key_reader(*key_bytes);
  auto key = ClientSecretFile::Deserialize(&key_reader);
  if (!key.ok()) return Fail(key.status());

  auto client = ClientContext<FpCyclotomicRing>::SeedOnly(
      server->ring(), key->tag_map, DeterministicPrf(key->seed));
  QuerySession<FpCyclotomicRing> session(&client, &*server);

  auto query = XPathQuery::Parse(xpath);
  if (!query.ok()) return Fail(query.status());
  auto result =
      session.EvaluateXPath(*query, XPathStrategy::kAllAtOnce, mode);
  if (!result.ok()) return Fail(result.status());

  std::printf("%zu match(es) for %s:\n", result->matches.size(),
              xpath.c_str());
  for (const auto& m : result->matches)
    std::printf("  node %d @ \"%s\"\n", m.node_id, m.path.c_str());
  const QueryStats& s = result->stats;
  std::printf("visited %zu/%zu nodes, %zu B up, %zu B down, %zu rounds\n",
              s.nodes_visited, s.total_server_nodes, s.transport.bytes_up,
              s.transport.bytes_down, s.rounds);
  return 0;
}

int CmdInspect(const std::string& store_path) {
  auto store_bytes = ReadFileBytes(store_path);
  if (!store_bytes.ok()) return Fail(store_bytes.status());
  auto kind = PeekStoredRingKind(*store_bytes);
  if (!kind.ok()) return Fail(kind.status());
  ByteReader reader(*store_bytes);
  if (*kind != StoredRingKind::kFpCyclotomic) {
    std::printf("Z-ring store (inspection demo covers Fp stores)\n");
    return 0;
  }
  auto server = LoadFpServerStore(&reader);
  if (!server.ok()) return Fail(server.status());
  std::printf("what the server/attacker sees in %s:\n", store_path.c_str());
  std::printf("  ring            : F_%llu[x]/(x^%llu - 1)\n",
              static_cast<unsigned long long>(server->ring().p()),
              static_cast<unsigned long long>(server->ring().p() - 1));
  std::printf("  tree shape      : %zu nodes (structure is NOT hidden)\n",
              server->size());
  std::printf("  polynomials     : uniformly random-looking shares, e.g. "
              "root = %s\n",
              server->ring().ToString(server->tree().nodes[0].poly).c_str());
  std::printf("  tag names       : (none stored)\n");
  std::printf("  tag map / seed  : (client-side only)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string cmd = argc > 1 ? argv[1] : "";
  if (cmd == "outsource" && (argc == 5 || argc == 6)) {
    return CmdOutsource(argv[2], argv[3], argv[4], argc == 6 ? argv[5] : "");
  }
  if (cmd == "query" && (argc == 5 || argc == 6)) {
    VerifyMode mode = VerifyMode::kVerified;
    if (argc == 6) {
      if (std::strcmp(argv[5], "--trusted") == 0)
        mode = VerifyMode::kTrustedConstOnly;
      else if (std::strcmp(argv[5], "--optimistic") == 0)
        mode = VerifyMode::kOptimistic;
    }
    return CmdQuery(argv[2], argv[3], argv[4], mode);
  }
  if (cmd == "inspect" && argc == 3) {
    return CmdInspect(argv[2]);
  }
  // Self-demonstration when run without arguments.
  std::printf("usage:\n"
              "  polysse_cli outsource <doc.xml> <store.bin> <client.key> "
              "[passphrase]\n"
              "  polysse_cli query <store.bin> <client.key> <xpath> "
              "[--trusted|--optimistic]\n"
              "  polysse_cli inspect <store.bin>\n\n");
  std::printf("running self-demo in /tmp ...\n");
  {
    const char* kDoc =
        "<library><shelf><book/><book/></shelf><shelf><book/></shelf>"
        "</library>";
    if (Status s = WriteFileBytes(
            "/tmp/polysse_demo.xml",
            std::span<const uint8_t>(
                reinterpret_cast<const uint8_t*>(kDoc), std::strlen(kDoc)));
        !s.ok())
      return Fail(s);
    int rc = CmdOutsource("/tmp/polysse_demo.xml", "/tmp/polysse_store.bin",
                          "/tmp/polysse_client.key", "demo-passphrase");
    if (rc != 0) return rc;
    rc = CmdQuery("/tmp/polysse_store.bin", "/tmp/polysse_client.key",
                  "//book", VerifyMode::kVerified);
    if (rc != 0) return rc;
    return CmdInspect("/tmp/polysse_store.bin");
  }
}
