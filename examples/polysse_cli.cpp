// A small end-to-end command line tool around the library — the workflow a
// real deployment would script. Built on the polysse::Engine facade:
//
//   polysse_cli outsource <doc.xml> <store.bin> <client.key> [passphrase]
//       parse the document, split it, write the server store and the
//       client's secret key file (seed + private tag map)
//
//   polysse_cli query <store.bin> <client.key> <xpath> [--trusted|--optimistic]
//       run an XPath query against the store with the client key
//
//   polysse_cli shamir <doc.xml> <xpath> [--servers N] [--threshold t]
//       demo Shamir t-of-n over server endpoints: outsource the document
//       across N servers, query, then kill servers one by one to show
//       any t answering and fewer than t failing cleanly
//
//   polysse_cli serve <store.bin> [port]
//       host a share store over TCP (port 0 = pick one); blocks until
//       killed — run one per server of a deployment
//
//   polysse_cli connect <client.key> <xpath> <host:port> [host:port ...]
//       query a deployment whose servers run elsewhere: the key file
//       carries the ring + scheme, each host:port is one live server
//
//   polysse_cli inspect <store.bin>
//       print what an attacker with the server file alone can see
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/persistence.h"
#include "net/socket_endpoint.h"
#include "xml/xml_parser.h"

using namespace polysse;

namespace {

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

int CmdOutsource(const std::string& xml_path, const std::string& store_path,
                 const std::string& key_path, const std::string& passphrase) {
  auto xml_bytes = ReadFileBytes(xml_path);
  if (!xml_bytes.ok()) return Fail(xml_bytes.status());
  auto doc = ParseXml(std::string(xml_bytes->begin(), xml_bytes->end()));
  if (!doc.ok()) return Fail(doc.status());

  DeterministicPrf seed = passphrase.empty()
                              ? DeterministicPrf(RandomSeed())
                              : DeterministicPrf::FromString(passphrase);
  auto engine = FpEngine::Outsource(*doc, seed);
  if (!engine.ok()) return Fail(engine.status());
  if (Status s = (*engine)->Save(store_path, key_path); !s.ok())
    return Fail(s);
  auto store_bytes = ReadFileBytes(store_path);
  auto key_bytes = ReadFileBytes(key_path);
  if (!store_bytes.ok()) return Fail(store_bytes.status());
  if (!key_bytes.ok()) return Fail(key_bytes.status());

  std::printf("outsourced %zu elements (p = %llu)\n", (*engine)->store().size(),
              static_cast<unsigned long long>((*engine)->ring().p()));
  std::printf("  server store : %s (%zu bytes — safe to host untrusted)\n",
              store_path.c_str(), store_bytes->size());
  std::printf("  client key   : %s (%zu bytes — keep secret)\n",
              key_path.c_str(), key_bytes->size());
  return 0;
}

int CmdQuery(const std::string& store_path, const std::string& key_path,
             const std::string& xpath, VerifyMode mode) {
  auto engine = FpEngine::Open(store_path, key_path);
  if (!engine.ok()) return Fail(engine.status());

  auto result = (*engine)->RunXPath(xpath, XPathStrategy::kAllAtOnce, mode);
  if (!result.ok()) return Fail(result.status());

  std::printf("%zu match(es) for %s:\n", result->matches.size(),
              xpath.c_str());
  for (const auto& m : result->matches)
    std::printf("  node %d @ \"%s\"\n", m.node_id, m.path.c_str());
  const QueryStats& s = result->stats;
  std::printf("visited %zu/%zu nodes, %zu B up, %zu B down, %zu rounds\n",
              s.nodes_visited, s.total_server_nodes, s.transport.bytes_up,
              s.transport.bytes_down, s.rounds);
  return 0;
}

int CmdShamir(const std::string& xml_path, const std::string& xpath,
              int num_servers, int threshold) {
  if (num_servers < 1 || threshold < 1 || threshold > num_servers)
    return Fail(Status::InvalidArgument(
        "need --servers N >= --threshold t >= 1"));
  auto xml_bytes = ReadFileBytes(xml_path);
  if (!xml_bytes.ok()) return Fail(xml_bytes.status());
  auto doc = ParseXml(std::string(xml_bytes->begin(), xml_bytes->end()));
  if (!doc.ok()) return Fail(doc.status());

  DeterministicPrf seed = DeterministicPrf(RandomSeed());
  FpEngine::Deploy deploy;
  deploy.scheme = ShareScheme::kShamir;
  deploy.num_servers = num_servers;
  deploy.threshold = threshold;
  auto engine = FpEngine::Outsource(*doc, seed, deploy);
  if (!engine.ok()) return Fail(engine.status());
  std::printf("outsourced %zu elements across %d servers, threshold %d "
              "(any %d answer; %d learn nothing)\n",
              (*engine)->store().size(), num_servers, threshold, threshold,
              threshold - 1);

  auto run = [&](const char* label) {
    auto r = (*engine)->RunXPath(xpath);
    if (!r.ok()) {
      std::printf("  %-28s -> %s\n", label, r.status().ToString().c_str());
      return;
    }
    std::printf("  %-28s -> %zu match(es), %zu failovers\n", label,
                r->matches.size(), r->stats.server_failovers);
  };

  run("all servers up");
  // Kill servers until exactly `threshold` remain: queries keep working,
  // failing servers are replaced transparently mid-query.
  for (int i = 0; i < num_servers - threshold; ++i) {
    FaultConfig down;
    down.fail_after_calls = 0;
    (*engine)->InjectFaults(static_cast<size_t>(i), down);
  }
  run("down to t servers");
  // One more failure leaves t-1: the query must fail cleanly, not lie.
  FaultConfig down;
  down.fail_after_calls = 0;
  (*engine)->InjectFaults(static_cast<size_t>(num_servers - threshold), down);
  run("below the threshold");
  return 0;
}

int CmdServe(const std::string& store_path, uint16_t port) {
  auto store_bytes = ReadFileBytes(store_path);
  if (!store_bytes.ok()) return Fail(store_bytes.status());
  auto kind = PeekStoredRingKind(*store_bytes);
  if (!kind.ok()) return Fail(kind.status());
  ByteReader reader(*store_bytes);
  if (*kind != StoredRingKind::kFpCyclotomic)
    return Fail(Status::Unimplemented("serve covers Fp stores (like query)"));
  auto store = LoadFpServerStore(&reader);
  if (!store.ok()) return Fail(store.status());

  auto server = SocketServer::Listen(&*store, port);
  if (!server.ok()) return Fail(server.status());
  std::printf("serving %zu shared nodes on 127.0.0.1:%u — the process sees "
              "only random-looking polynomials; ctrl-c to stop\n",
              store->size(), (*server)->port());
  for (;;) pause();  // the accept loop does the work
}

/// Builds {ring, thin client, endpoint group} from a key file plus live
/// server addresses, runs the query, prints matches.
int CmdConnect(const std::string& key_path, const std::string& xpath,
               const std::vector<std::string>& addresses) {
  auto key_bytes = ReadFileBytes(key_path);
  if (!key_bytes.ok()) return Fail(key_bytes.status());
  ByteReader key_reader(*key_bytes);
  auto key = ClientSecretFile::Deserialize(&key_reader);
  if (!key.ok()) return Fail(key.status());
  if (key->ring_kind != static_cast<uint8_t>(StoredRingKind::kFpCyclotomic))
    return Fail(Status::Unimplemented(
        "connect needs a v2 Fp key file (re-save with this build)"));
  auto ring = FpCyclotomicRing::Create(key->fp_p);
  if (!ring.ok()) return Fail(ring.status());
  auto client = ClientContext<FpCyclotomicRing>::SeedOnly(
      *ring, key->tag_map, DeterministicPrf(key->seed));

  // The address list is positional: address i is server i of the saved
  // deployment (additive shares and Shamir x-coordinates are per-slot, so
  // a subset or reordering would recombine garbage). Dead servers still
  // get listed; Shamir fails over around them.
  if (addresses.size() != static_cast<size_t>(key->num_servers))
    return Fail(Status::InvalidArgument(
        "this key file names " + std::to_string(key->num_servers) +
        " server(s); pass exactly that many host:port arguments, in server "
        "order (list unreachable ones too — Shamir fails over)"));

  // Placeholder for a server that refused the connection: keeps its slot
  // (and so every other server's x-coordinate) while always failing, which
  // Shamir failover routes around.
  struct OfflineEndpoint final : ServerEndpoint {
    Result<EvalResponse> Eval(const EvalRequest&) override {
      return Status::Unavailable("server offline");
    }
    Result<FetchResponse> Fetch(const FetchRequest&) override {
      return Status::Unavailable("server offline");
    }
  };

  std::vector<std::unique_ptr<ServerEndpoint>> owned;
  std::vector<ServerEndpoint*> eps;
  for (const std::string& addr : addresses) {
    const size_t colon = addr.rfind(':');
    if (colon == std::string::npos)
      return Fail(Status::InvalidArgument("expected host:port, got " + addr));
    auto ep = SocketEndpoint::Connect(
        addr.substr(0, colon),
        static_cast<uint16_t>(std::atoi(addr.c_str() + colon + 1)));
    if (ep.ok()) {
      owned.push_back(std::move(*ep));
    } else if (key->scheme == ShareScheme::kShamir) {
      std::fprintf(stderr, "note: %s unreachable (%s); relying on failover\n",
                   addr.c_str(), ep.status().ToString().c_str());
      owned.push_back(std::make_unique<OfflineEndpoint>());
    } else {
      return Fail(ep.status());  // additive/2-party need every server
    }
    eps.push_back(owned.back().get());
  }

  EndpointGroup group;
  switch (key->scheme) {
    case ShareScheme::kTwoParty:
      group = EndpointGroup::TwoParty(eps[0]);
      break;
    case ShareScheme::kAdditive:
      group = EndpointGroup::Additive(eps);
      break;
    case ShareScheme::kShamir:
      group = EndpointGroup::Shamir(eps, key->threshold);
      break;
  }
  // Overlap the per-server round trips when several servers answer.
  ThreadPool pool(eps.size() > 1 ? eps.size() : 1);
  if (eps.size() > 1) group.executor = &pool;
  QuerySession<FpCyclotomicRing> session(&client, group);

  auto query = XPathQuery::Parse(xpath);
  if (!query.ok()) return Fail(query.status());
  auto result = session.EvaluateXPath(*query, XPathStrategy::kAllAtOnce,
                                      VerifyMode::kVerified);
  if (!result.ok()) return Fail(result.status());
  std::printf("%zu match(es) for %s over %zu TCP server(s):\n",
              result->matches.size(), xpath.c_str(), eps.size());
  for (const auto& m : result->matches)
    std::printf("  node %d @ \"%s\"\n", m.node_id, m.path.c_str());
  const QueryStats& s = result->stats;
  std::printf("visited %zu/%zu nodes, %zu B up, %zu B down, %zu rounds\n",
              s.nodes_visited, s.total_server_nodes, s.transport.bytes_up,
              s.transport.bytes_down, s.rounds);
  return 0;
}

int CmdInspect(const std::string& store_path) {
  auto store_bytes = ReadFileBytes(store_path);
  if (!store_bytes.ok()) return Fail(store_bytes.status());
  auto kind = PeekStoredRingKind(*store_bytes);
  if (!kind.ok()) return Fail(kind.status());
  ByteReader reader(*store_bytes);
  if (*kind != StoredRingKind::kFpCyclotomic) {
    std::printf("Z-ring store (inspection demo covers Fp stores)\n");
    return 0;
  }
  auto server = LoadFpServerStore(&reader);
  if (!server.ok()) return Fail(server.status());
  std::printf("what the server/attacker sees in %s:\n", store_path.c_str());
  std::printf("  ring            : F_%llu[x]/(x^%llu - 1)\n",
              static_cast<unsigned long long>(server->ring().p()),
              static_cast<unsigned long long>(server->ring().p() - 1));
  std::printf("  tree shape      : %zu nodes (structure is NOT hidden)\n",
              server->size());
  std::printf("  polynomials     : uniformly random-looking shares, e.g. "
              "root = %s\n",
              server->ring().ToString(server->tree().nodes[0].poly).c_str());
  std::printf("  tag names       : (none stored)\n");
  std::printf("  tag map / seed  : (client-side only)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string cmd = argc > 1 ? argv[1] : "";
  if (cmd == "outsource" && (argc == 5 || argc == 6)) {
    return CmdOutsource(argv[2], argv[3], argv[4], argc == 6 ? argv[5] : "");
  }
  if (cmd == "query" && (argc == 5 || argc == 6)) {
    VerifyMode mode = VerifyMode::kVerified;
    if (argc == 6) {
      if (std::strcmp(argv[5], "--trusted") == 0)
        mode = VerifyMode::kTrustedConstOnly;
      else if (std::strcmp(argv[5], "--optimistic") == 0)
        mode = VerifyMode::kOptimistic;
    }
    return CmdQuery(argv[2], argv[3], argv[4], mode);
  }
  if (cmd == "shamir" && argc >= 4) {
    int num_servers = 5, threshold = 3;
    for (int i = 4; i + 1 < argc; i += 2) {
      if (std::strcmp(argv[i], "--servers") == 0)
        num_servers = std::atoi(argv[i + 1]);
      else if (std::strcmp(argv[i], "--threshold") == 0)
        threshold = std::atoi(argv[i + 1]);
    }
    return CmdShamir(argv[2], argv[3], num_servers, threshold);
  }
  if (cmd == "serve" && (argc == 3 || argc == 4)) {
    return CmdServe(argv[2],
                    static_cast<uint16_t>(argc == 4 ? std::atoi(argv[3]) : 0));
  }
  if (cmd == "connect" && argc >= 5) {
    std::vector<std::string> addresses;
    for (int i = 4; i < argc; ++i) addresses.push_back(argv[i]);
    return CmdConnect(argv[2], argv[3], addresses);
  }
  if (cmd == "inspect" && argc == 3) {
    return CmdInspect(argv[2]);
  }
  // Self-demonstration when run without arguments.
  std::printf("usage:\n"
              "  polysse_cli outsource <doc.xml> <store.bin> <client.key> "
              "[passphrase]\n"
              "  polysse_cli query <store.bin> <client.key> <xpath> "
              "[--trusted|--optimistic]\n"
              "  polysse_cli shamir <doc.xml> <xpath> [--servers N] "
              "[--threshold t]\n"
              "  polysse_cli serve <store.bin> [port]\n"
              "  polysse_cli connect <client.key> <xpath> <host:port> "
              "[host:port ...]\n"
              "  polysse_cli inspect <store.bin>\n\n");
  std::printf("running self-demo in /tmp ...\n");
  {
    const char* kDoc =
        "<library><shelf><book/><book/></shelf><shelf><book/></shelf>"
        "</library>";
    if (Status s = WriteFileBytes(
            "/tmp/polysse_demo.xml",
            std::span<const uint8_t>(
                reinterpret_cast<const uint8_t*>(kDoc), std::strlen(kDoc)));
        !s.ok())
      return Fail(s);
    int rc = CmdOutsource("/tmp/polysse_demo.xml", "/tmp/polysse_store.bin",
                          "/tmp/polysse_client.key", "demo-passphrase");
    if (rc != 0) return rc;
    rc = CmdQuery("/tmp/polysse_store.bin", "/tmp/polysse_client.key",
                  "//book", VerifyMode::kVerified);
    if (rc != 0) return rc;
    rc = CmdShamir("/tmp/polysse_demo.xml", "//book", 5, 3);
    if (rc != 0) return rc;
    // serve/connect leg: host the saved store over real loopback TCP in
    // this process, then query it exactly like a remote client would.
    {
      auto store_bytes = ReadFileBytes("/tmp/polysse_store.bin");
      if (!store_bytes.ok()) return Fail(store_bytes.status());
      ByteReader reader(*store_bytes);
      auto store = LoadFpServerStore(&reader);
      if (!store.ok()) return Fail(store.status());
      auto server = SocketServer::Listen(&*store, /*port=*/0);
      if (!server.ok()) return Fail(server.status());
      std::printf("\nserving the store on 127.0.0.1:%u; querying over "
                  "TCP ...\n",
                  (*server)->port());
      rc = CmdConnect("/tmp/polysse_client.key", "//book",
                      {"127.0.0.1:" + std::to_string((*server)->port())});
      if (rc != 0) return rc;
    }
    return CmdInspect("/tmp/polysse_store.bin");
  }
}
