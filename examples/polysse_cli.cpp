// A small end-to-end command line tool around the library — the workflow a
// real deployment would script. Built on the polysse::Collection facade
// (polysse::Engine for the single-document commands):
//
//   polysse_cli outsource <doc.xml> <store.bin> <client.key> [passphrase]
//       parse one document, split it, write the server store and the
//       client's secret key file (seed + private tag map)
//
//   polysse_cli query <store.bin> <client.key> <xpath> [--trusted|--optimistic]
//       run an XPath query against the store with the client key
//
//   polysse_cli add <store.bin> <client.key> <doc-id> <doc.xml> [passphrase]
//       add one document to a collection (files are created on first add);
//       existing documents are NOT re-outsourced
//
//   polysse_cli remove <store.bin> <client.key> <doc-id>
//       retire one document from a collection
//
//   polysse_cli search <store.bin> <client.key> <tag-or-xpath>
//       cross-document search: one shared walk over every document,
//       results grouped per doc-id
//
//   polysse_cli shamir <doc.xml> <xpath> [--servers N] [--threshold t]
//       demo Shamir t-of-n over server endpoints: outsource the document
//       across N servers, query, then kill servers one by one to show
//       any t answering and fewer than t failing cleanly
//
//   polysse_cli serve <store.bin> [port]
//       host a share store (single tree or multi-document registry) over
//       TCP (port 0 = pick one); blocks until killed — run one per server
//
//   polysse_cli connect <client.key> <query> <host:port> [host:port ...]
//       query a deployment whose servers run elsewhere: the key file
//       carries the ring + scheme + document table, each host:port is one
//       live server
//
//   polysse_cli inspect <store.bin | client.key>
//       store file: print what an attacker with the server file alone can
//       see; key file: print the deployment summary, including the shard
//       layout of a sharded collection
//
//   polysse_cli probe <host> <port>
//       health-probe one server over the wire ping message: prints its
//       document/node inventory when alive
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/collection.h"
#include "core/engine.h"
#include "core/persistence.h"
#include "core/store_registry.h"
#include "net/socket_endpoint.h"
#include "shard/sharded_collection.h"
#include "xml/xml_parser.h"

using namespace polysse;

namespace {

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

Result<XmlNode> ParseXmlFile(const std::string& xml_path) {
  ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFileBytes(xml_path));
  return ParseXml(std::string(bytes.begin(), bytes.end()));
}

void PrintQueryStats(const QueryStats& s) {
  std::printf("visited %zu/%zu nodes, %zu B up, %zu B down, %zu rounds\n",
              s.nodes_visited, s.total_server_nodes, s.transport.bytes_up,
              s.transport.bytes_down, s.rounds);
}

/// Runs `query` ("tag" or an XPath starting with '/') across a collection.
Result<CollectionResult> RunCollectionQuery(FpCollection& col,
                                            const std::string& query) {
  if (!query.empty() && query[0] == '/') return col.SearchXPath(query);
  return col.Search(query);
}

void PrintCollectionResult(const CollectionResult& r, const std::string& query,
                           size_t num_docs) {
  size_t total = 0;
  for (const auto& [doc_id, result] : r.per_doc) total += result.matches.size();
  std::printf("%zu match(es) for %s across %zu document(s):\n", total,
              query.c_str(), num_docs);
  for (const auto& [doc_id, result] : r.per_doc) {
    std::printf("  doc %llu:\n", static_cast<unsigned long long>(doc_id));
    for (const auto& m : result.matches)
      std::printf("    node %d @ \"%s\"\n", m.node_id, m.path.c_str());
  }
  PrintQueryStats(r.stats);
}

int CmdOutsource(const std::string& xml_path, const std::string& store_path,
                 const std::string& key_path, const std::string& passphrase) {
  auto doc = ParseXmlFile(xml_path);
  if (!doc.ok()) return Fail(doc.status());

  DeterministicPrf seed = passphrase.empty()
                              ? DeterministicPrf(RandomSeed())
                              : DeterministicPrf::FromString(passphrase);
  auto engine = FpEngine::Outsource(*doc, seed);
  if (!engine.ok()) return Fail(engine.status());
  if (Status s = (*engine)->Save(store_path, key_path); !s.ok())
    return Fail(s);
  auto store_bytes = ReadFileBytes(store_path);
  auto key_bytes = ReadFileBytes(key_path);
  if (!store_bytes.ok()) return Fail(store_bytes.status());
  if (!key_bytes.ok()) return Fail(key_bytes.status());

  std::printf("outsourced %zu elements (p = %llu)\n", (*engine)->store().size(),
              static_cast<unsigned long long>((*engine)->ring().p()));
  std::printf("  server store : %s (%zu bytes — safe to host untrusted)\n",
              store_path.c_str(), store_bytes->size());
  std::printf("  client key   : %s (%zu bytes — keep secret)\n",
              key_path.c_str(), key_bytes->size());
  return 0;
}

int CmdQuery(const std::string& store_path, const std::string& key_path,
             const std::string& xpath, VerifyMode mode) {
  auto engine = FpEngine::Open(store_path, key_path);
  if (!engine.ok()) return Fail(engine.status());

  auto result = (*engine)->RunXPath(xpath, XPathStrategy::kAllAtOnce, mode);
  if (!result.ok()) return Fail(result.status());

  std::printf("%zu match(es) for %s:\n", result->matches.size(),
              xpath.c_str());
  for (const auto& m : result->matches)
    std::printf("  node %d @ \"%s\"\n", m.node_id, m.path.c_str());
  PrintQueryStats(result->stats);
  return 0;
}

int CmdAdd(const std::string& store_path, const std::string& key_path,
           DocId doc_id, const std::string& xml_path,
           const std::string& passphrase) {
  auto doc = ParseXmlFile(xml_path);
  if (!doc.ok()) return Fail(doc.status());

  // Open an existing collection; only a MISSING KEY starts a new one. A
  // present-but-corrupt key, or a present key whose store file is gone,
  // must fail — never silently replace the client secret.
  std::unique_ptr<FpCollection> col;
  auto opened = FpCollection::Open(store_path, key_path);
  if (opened.ok()) {
    col = std::move(*opened);
  } else if (opened.status().code() == StatusCode::kNotFound &&
             ReadFileBytes(key_path).status().code() ==
                 StatusCode::kNotFound) {
    DeterministicPrf seed = passphrase.empty()
                                ? DeterministicPrf(RandomSeed())
                                : DeterministicPrf::FromString(passphrase);
    auto created = FpCollection::Create(seed);
    if (!created.ok()) return Fail(created.status());
    col = std::move(*created);
    std::printf("created new collection (p = %llu)\n",
                static_cast<unsigned long long>(col->ring().p()));
  } else {
    return Fail(opened.status());
  }
  if (Status s = col->Add(doc_id, *doc); !s.ok()) return Fail(s);
  if (Status s = col->Save(store_path, key_path); !s.ok()) return Fail(s);
  std::printf("added doc %llu; collection now holds %zu document(s), "
              "%zu shared nodes\n",
              static_cast<unsigned long long>(doc_id), col->num_docs(),
              col->total_nodes());
  return 0;
}

int CmdRemove(const std::string& store_path, const std::string& key_path,
              DocId doc_id) {
  auto col = FpCollection::Open(store_path, key_path);
  if (!col.ok()) return Fail(col.status());
  if (Status s = (*col)->Remove(doc_id); !s.ok()) return Fail(s);
  if (Status s = (*col)->Save(store_path, key_path); !s.ok()) return Fail(s);
  std::printf("removed doc %llu; collection now holds %zu document(s)\n",
              static_cast<unsigned long long>(doc_id), (*col)->num_docs());
  return 0;
}

int CmdSearch(const std::string& store_path, const std::string& key_path,
              const std::string& query) {
  auto col = FpCollection::Open(store_path, key_path);
  if (!col.ok()) return Fail(col.status());
  auto result = RunCollectionQuery(**col, query);
  if (!result.ok()) return Fail(result.status());
  PrintCollectionResult(*result, query, (*col)->num_docs());
  return 0;
}

int CmdShamir(const std::string& xml_path, const std::string& xpath,
              int num_servers, int threshold) {
  if (num_servers < 1 || threshold < 1 || threshold > num_servers)
    return Fail(Status::InvalidArgument(
        "need --servers N >= --threshold t >= 1"));
  auto doc = ParseXmlFile(xml_path);
  if (!doc.ok()) return Fail(doc.status());

  DeterministicPrf seed = DeterministicPrf(RandomSeed());
  FpEngine::Deploy deploy;
  deploy.scheme = ShareScheme::kShamir;
  deploy.num_servers = num_servers;
  deploy.threshold = threshold;
  auto engine = FpEngine::Outsource(*doc, seed, deploy);
  if (!engine.ok()) return Fail(engine.status());
  std::printf("outsourced %zu elements across %d servers, threshold %d "
              "(any %d answer; %d learn nothing)\n",
              (*engine)->store().size(), num_servers, threshold, threshold,
              threshold - 1);

  auto run = [&](const char* label) {
    auto r = (*engine)->RunXPath(xpath);
    if (!r.ok()) {
      std::printf("  %-28s -> %s\n", label, r.status().ToString().c_str());
      return;
    }
    std::printf("  %-28s -> %zu match(es), %zu failovers\n", label,
                r->matches.size(), r->stats.server_failovers);
  };

  run("all servers up");
  // Kill servers until exactly `threshold` remain: queries keep working,
  // failing servers are replaced transparently mid-query.
  for (int i = 0; i < num_servers - threshold; ++i) {
    FaultConfig down;
    down.fail_after_calls = 0;
    (*engine)->InjectFaults(static_cast<size_t>(i), down);
  }
  run("down to t servers");
  // One more failure leaves t-1: the query must fail cleanly, not lie.
  FaultConfig down;
  down.fail_after_calls = 0;
  (*engine)->InjectFaults(static_cast<size_t>(num_servers - threshold), down);
  run("below the threshold");
  return 0;
}

/// Loads a store file as a servable registry (single tree or container).
Result<std::unique_ptr<FpStoreRegistry>> LoadServableStore(
    const std::string& store_path) {
  ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFileBytes(store_path));
  ASSIGN_OR_RETURN(StoredRingKind kind, PeekStoredRingKind(bytes));
  if (kind != StoredRingKind::kFpCyclotomic)
    return Status::Unimplemented("serve covers Fp stores (like query)");
  return LoadStoreRegistry<FpCyclotomicRing>(bytes);
}

int CmdServe(const std::string& store_path, uint16_t port) {
  auto registry = LoadServableStore(store_path);
  if (!registry.ok()) return Fail(registry.status());

  auto server = SocketServer::Listen(registry->get(), port);
  if (!server.ok()) return Fail(server.status());
  std::printf("serving %zu document(s), %zu shared nodes on 127.0.0.1:%u — "
              "the process sees only random-looking polynomials; ctrl-c to "
              "stop\n",
              (*registry)->num_docs(), (*registry)->total_nodes(),
              (*server)->port());
  for (;;) pause();  // the accept loop does the work
}

/// Builds a connected collection client from a key file plus live server
/// addresses, runs the query, prints per-document matches.
int CmdConnect(const std::string& key_path, const std::string& query,
               const std::vector<std::string>& addresses) {
  auto key_bytes = ReadFileBytes(key_path);
  if (!key_bytes.ok()) return Fail(key_bytes.status());
  ByteReader key_reader(*key_bytes);
  auto key = ClientSecretFile::Deserialize(&key_reader);
  if (!key.ok()) return Fail(key.status());

  // The address list is positional: address i is server i of the saved
  // deployment (additive shares and Shamir x-coordinates are per-slot, so
  // a subset or reordering would recombine garbage). Dead servers still
  // get listed; Shamir fails over around them.

  // Placeholder for a server that refused the connection: keeps its slot
  // (and so every other server's x-coordinate) while always failing, which
  // Shamir failover routes around.
  struct OfflineEndpoint final : ServerEndpoint {
    Result<EvalResponse> Eval(const EvalRequest&) override {
      return Status::Unavailable("server offline");
    }
    Result<FetchResponse> Fetch(const FetchRequest&) override {
      return Status::Unavailable("server offline");
    }
  };

  std::vector<std::unique_ptr<ServerEndpoint>> owned;
  std::vector<ServerEndpoint*> eps;
  for (const std::string& addr : addresses) {
    const size_t colon = addr.rfind(':');
    if (colon == std::string::npos)
      return Fail(Status::InvalidArgument("expected host:port, got " + addr));
    auto ep = SocketEndpoint::Connect(
        addr.substr(0, colon),
        static_cast<uint16_t>(std::atoi(addr.c_str() + colon + 1)));
    if (ep.ok()) {
      owned.push_back(std::move(*ep));
    } else if (key->scheme == ShareScheme::kShamir) {
      std::fprintf(stderr, "note: %s unreachable (%s); relying on failover\n",
                   addr.c_str(), ep.status().ToString().c_str());
      owned.push_back(std::make_unique<OfflineEndpoint>());
    } else {
      return Fail(ep.status());  // additive/2-party need every server
    }
    eps.push_back(owned.back().get());
  }

  // Overlap the per-server round trips when several servers answer.
  ThreadPool pool(eps.size() > 1 ? eps.size() : 1);
  auto col = FpCollection::Connect(*key, eps,
                                   eps.size() > 1 ? &pool : nullptr);
  if (!col.ok()) return Fail(col.status());

  auto result = RunCollectionQuery(**col, query);
  if (!result.ok()) return Fail(result.status());
  std::printf("over %zu TCP server(s): ", eps.size());
  PrintCollectionResult(*result, query, (*col)->num_docs());
  return 0;
}

const char* SchemeName(ShareScheme scheme) {
  switch (scheme) {
    case ShareScheme::kTwoParty: return "two-party";
    case ShareScheme::kAdditive: return "additive";
    case ShareScheme::kShamir: return "shamir";
  }
  return "?";
}

/// Key-file inspection: the deployment summary the CLIENT sees — notably
/// the shard layout of a sharded collection (shard -> documents -> node-id
/// range -> server group).
int InspectKeyFile(const std::string& path,
                   std::span<const uint8_t> bytes) {
  ByteReader reader(bytes);
  auto key = ClientSecretFile::Deserialize(&reader);
  if (!key.ok()) return Fail(key.status());
  std::printf("client key file %s (format v%u — keep secret):\n",
              path.c_str(), key->version);
  std::printf("  scheme          : %s, %d server(s)%s per group\n",
              SchemeName(key->scheme), key->num_servers,
              key->scheme == ShareScheme::kShamir
                  ? (", threshold " + std::to_string(key->threshold)).c_str()
                  : "");
  std::printf("  documents       : %zu\n", key->docs.size());
  if (key->shards.empty()) {
    std::printf("  shards          : (unsharded collection)\n");
    return 0;
  }
  std::vector<ClientSecretFile::ShardEntry> shards = key->shards;
  std::sort(shards.begin(), shards.end(),
            [](const auto& a, const auto& b) {
              return a.shard_id < b.shard_id;
            });
  std::printf("  shard layout    : %zu shard(s)\n", shards.size());
  for (const auto& shard : shards) {
    size_t docs_here = 0;
    for (const auto& doc : key->docs) {
      if (doc.base >= shard.base && doc.base + doc.size <= shard.base + shard.span)
        ++docs_here;
    }
    std::printf("    shard %u: %zu doc(s), node ids [%d, %lld), "
                "next free offset %lld, group of %d server(s)\n",
                shard.shard_id, docs_here, shard.base,
                static_cast<long long>(shard.base + shard.span),
                static_cast<long long>(shard.next), key->num_servers);
  }
  return 0;
}

int CmdInspect(const std::string& store_path) {
  auto store_bytes = ReadFileBytes(store_path);
  if (!store_bytes.ok()) return Fail(store_bytes.status());
  if (store_bytes->size() >= 4 &&
      std::memcmp(store_bytes->data(), "PKEY", 4) == 0)
    return InspectKeyFile(store_path, *store_bytes);
  auto kind = PeekStoredRingKind(*store_bytes);
  if (!kind.ok()) return Fail(kind.status());
  if (*kind != StoredRingKind::kFpCyclotomic) {
    std::printf("Z-ring store (inspection demo covers Fp stores)\n");
    return 0;
  }
  auto registry = LoadStoreRegistry<FpCyclotomicRing>(*store_bytes);
  if (!registry.ok()) return Fail(registry.status());
  std::printf("what the server/attacker sees in %s:\n", store_path.c_str());
  std::printf("  ring            : F_%llu[x]/(x^%llu - 1)\n",
              static_cast<unsigned long long>((*registry)->ring().p()),
              static_cast<unsigned long long>((*registry)->ring().p() - 1));
  std::printf("  documents       : %zu (ids and tree shapes are NOT hidden)\n",
              (*registry)->num_docs());
  for (const auto& doc : (*registry)->docs()) {
    const ServerStore<FpCyclotomicRing>* store =
        (*registry)->store(doc.doc_id).value();
    std::printf("    doc %llu: %zu nodes, e.g. root share = %s\n",
                static_cast<unsigned long long>(doc.doc_id), doc.nodes,
                store->ring().ToString(store->tree().nodes[0].poly).c_str());
  }
  std::printf("  tag names       : (none stored)\n");
  std::printf("  tag map / seed  : (client-side only)\n");
  return 0;
}

int CmdProbe(const std::string& host, uint16_t port) {
  auto ep = SocketEndpoint::Connect(host, port);
  if (!ep.ok()) return Fail(ep.status());
  PingRequest req;
  req.nonce = 0x706f6c79;
  auto pong = (*ep)->Ping(req);
  if (!pong.ok()) return Fail(pong.status());
  if (pong->nonce != req.nonce)
    return Fail(Status::Corruption("server echoed the wrong nonce"));
  std::printf("alive: %s:%u serves %llu document(s), %llu node(s)\n",
              host.c_str(), port,
              static_cast<unsigned long long>(pong->doc_count),
              static_cast<unsigned long long>(pong->node_count));
  return 0;
}

int SelfDemo() {
  std::printf("running self-demo in /tmp ...\n");
  auto write_doc = [](const char* path, const char* xml) {
    return WriteFileBytes(
        path, std::span<const uint8_t>(
                  reinterpret_cast<const uint8_t*>(xml), std::strlen(xml)));
  };

  // Single-document workflow (engine).
  const char* kDoc =
      "<library><shelf><book/><book/></shelf><shelf><book/></shelf>"
      "</library>";
  if (Status s = write_doc("/tmp/polysse_demo.xml", kDoc); !s.ok())
    return Fail(s);
  int rc = CmdOutsource("/tmp/polysse_demo.xml", "/tmp/polysse_store.bin",
                        "/tmp/polysse_client.key", "demo-passphrase");
  if (rc != 0) return rc;
  rc = CmdQuery("/tmp/polysse_store.bin", "/tmp/polysse_client.key",
                "//book", VerifyMode::kVerified);
  if (rc != 0) return rc;
  rc = CmdShamir("/tmp/polysse_demo.xml", "//book", 5, 3);
  if (rc != 0) return rc;

  // Collection workflow: incremental add/remove + cross-document search.
  std::printf("\ncollection demo: two documents, one key ...\n");
  std::remove("/tmp/polysse_col.bin");
  std::remove("/tmp/polysse_col.key");
  const char* kDoc2 =
      "<archive><box><book/></box><box><scroll/><book/></box></archive>";
  if (Status s = write_doc("/tmp/polysse_demo2.xml", kDoc2); !s.ok())
    return Fail(s);
  rc = CmdAdd("/tmp/polysse_col.bin", "/tmp/polysse_col.key", 1,
              "/tmp/polysse_demo.xml", "demo-passphrase");
  if (rc != 0) return rc;
  rc = CmdAdd("/tmp/polysse_col.bin", "/tmp/polysse_col.key", 2,
              "/tmp/polysse_demo2.xml", "");
  if (rc != 0) return rc;
  rc = CmdSearch("/tmp/polysse_col.bin", "/tmp/polysse_col.key", "book");
  if (rc != 0) return rc;
  rc = CmdRemove("/tmp/polysse_col.bin", "/tmp/polysse_col.key", 1);
  if (rc != 0) return rc;
  rc = CmdSearch("/tmp/polysse_col.bin", "/tmp/polysse_col.key", "book");
  if (rc != 0) return rc;

  // serve/connect leg: host the collection registry over real loopback
  // TCP in this process, then query it exactly like a remote client —
  // probing its health first, the way scatter-gather skips dead groups.
  {
    auto registry = LoadServableStore("/tmp/polysse_col.bin");
    if (!registry.ok()) return Fail(registry.status());
    auto server = SocketServer::Listen(registry->get(), /*port=*/0);
    if (!server.ok()) return Fail(server.status());
    std::printf("\nserving the collection on 127.0.0.1:%u; probing, then "
                "querying over TCP ...\n",
                (*server)->port());
    rc = CmdProbe("127.0.0.1", (*server)->port());
    if (rc != 0) return rc;
    rc = CmdConnect("/tmp/polysse_col.key", "//book",
                    {"127.0.0.1:" + std::to_string((*server)->port())});
    if (rc != 0) return rc;
  }
  rc = CmdInspect("/tmp/polysse_col.bin");
  if (rc != 0) return rc;

  // Sharded-collection leg: two server groups, scatter-gather search, an
  // online split, and the shard layout as `inspect` reports it.
  std::printf("\nsharded demo: two groups, scatter-gather search ...\n");
  {
    ShardDeploy deploy;
    deploy.num_shards = 2;
    auto sharded = FpShardedCollection::Create(
        DeterministicPrf::FromString("demo-passphrase"), deploy);
    if (!sharded.ok()) return Fail(sharded.status());
    auto doc1 = ParseXmlFile("/tmp/polysse_demo.xml");
    auto doc2 = ParseXmlFile("/tmp/polysse_demo2.xml");
    if (!doc1.ok()) return Fail(doc1.status());
    if (!doc2.ok()) return Fail(doc2.status());
    if (Status s = (*sharded)->Add(1, *doc1); !s.ok()) return Fail(s);
    if (Status s = (*sharded)->Add(2, *doc2); !s.ok()) return Fail(s);
    auto r = (*sharded)->Search("book");
    if (!r.ok()) return Fail(r.status());
    size_t total = 0;
    for (const auto& [doc_id, result] : r->per_doc)
      total += result.matches.size();
    std::printf("%zu match(es) across %zu shard(s); deepest shard walked "
                "%zu round(s)\n",
                total, r->per_shard.size(), r->stats.rounds);
    if (Status s = (*sharded)->SplitShard(0, 2); !s.ok()) return Fail(s);
    auto r2 = (*sharded)->Search("book");
    if (!r2.ok()) return Fail(r2.status());
    bool same = r->per_doc.size() == r2->per_doc.size();
    for (auto a = r->per_doc.begin(), b = r2->per_doc.begin();
         same && a != r->per_doc.end(); ++a, ++b)
      same = a->first == b->first && a->second.matches == b->second.matches;
    std::printf("after splitting shard 0 -> 2: answers %s\n",
                same ? "unchanged" : "CHANGED (bug!)");
    if (Status s = (*sharded)->SaveKey("/tmp/polysse_shard.key"); !s.ok())
      return Fail(s);
  }
  return CmdInspect("/tmp/polysse_shard.key");
}

}  // namespace

int main(int argc, char** argv) {
  std::string cmd = argc > 1 ? argv[1] : "";
  if (cmd == "outsource" && (argc == 5 || argc == 6)) {
    return CmdOutsource(argv[2], argv[3], argv[4], argc == 6 ? argv[5] : "");
  }
  if (cmd == "query" && (argc == 5 || argc == 6)) {
    VerifyMode mode = VerifyMode::kVerified;
    if (argc == 6) {
      if (std::strcmp(argv[5], "--trusted") == 0)
        mode = VerifyMode::kTrustedConstOnly;
      else if (std::strcmp(argv[5], "--optimistic") == 0)
        mode = VerifyMode::kOptimistic;
    }
    return CmdQuery(argv[2], argv[3], argv[4], mode);
  }
  if (cmd == "add" && (argc == 6 || argc == 7)) {
    return CmdAdd(argv[2], argv[3],
                  static_cast<DocId>(std::strtoull(argv[4], nullptr, 10)),
                  argv[5], argc == 7 ? argv[6] : "");
  }
  if (cmd == "remove" && argc == 5) {
    return CmdRemove(argv[2], argv[3],
                     static_cast<DocId>(std::strtoull(argv[4], nullptr, 10)));
  }
  if (cmd == "search" && argc == 5) {
    return CmdSearch(argv[2], argv[3], argv[4]);
  }
  if (cmd == "shamir" && argc >= 4) {
    int num_servers = 5, threshold = 3;
    for (int i = 4; i + 1 < argc; i += 2) {
      if (std::strcmp(argv[i], "--servers") == 0)
        num_servers = std::atoi(argv[i + 1]);
      else if (std::strcmp(argv[i], "--threshold") == 0)
        threshold = std::atoi(argv[i + 1]);
    }
    return CmdShamir(argv[2], argv[3], num_servers, threshold);
  }
  if (cmd == "serve" && (argc == 3 || argc == 4)) {
    return CmdServe(argv[2],
                    static_cast<uint16_t>(argc == 4 ? std::atoi(argv[3]) : 0));
  }
  if (cmd == "connect" && argc >= 5) {
    std::vector<std::string> addresses;
    for (int i = 4; i < argc; ++i) addresses.push_back(argv[i]);
    return CmdConnect(argv[2], argv[3], addresses);
  }
  if (cmd == "inspect" && argc == 3) {
    return CmdInspect(argv[2]);
  }
  if (cmd == "probe" && argc == 4) {
    return CmdProbe(argv[2], static_cast<uint16_t>(std::atoi(argv[3])));
  }
  // Self-demonstration when run without arguments.
  std::printf("usage:\n"
              "  polysse_cli outsource <doc.xml> <store.bin> <client.key> "
              "[passphrase]\n"
              "  polysse_cli query <store.bin> <client.key> <xpath> "
              "[--trusted|--optimistic]\n"
              "  polysse_cli add <store.bin> <client.key> <doc-id> <doc.xml> "
              "[passphrase]\n"
              "  polysse_cli remove <store.bin> <client.key> <doc-id>\n"
              "  polysse_cli search <store.bin> <client.key> <tag-or-xpath>\n"
              "  polysse_cli shamir <doc.xml> <xpath> [--servers N] "
              "[--threshold t]\n"
              "  polysse_cli serve <store.bin> [port]\n"
              "  polysse_cli connect <client.key> <query> <host:port> "
              "[host:port ...]\n"
              "  polysse_cli inspect <store.bin | client.key>\n"
              "  polysse_cli probe <host> <port>\n\n");
  return SelfDemo();
}
