// Secure multi-party computation demos from paper §3 and §4.2:
//   1. anonymous sum vote and veto vote with no trusted third party;
//   2. k-of-n multi-server outsourcing where any t servers answer a query
//      and t-1 servers learn nothing.
//
//   $ ./multi_server_voting
#include <cstdio>

#include "core/multi_server.h"
#include "core/poly_tree.h"
#include "mpc/voting.h"
#include "xml/xml_generator.h"

int main() {
  using namespace polysse;

  // ---------------------------------------------------- §3 voting demo --
  auto field = PrimeField::Create(101).value();
  ChaChaRng rng = ChaChaRng::FromString("election-2004");

  std::vector<uint64_t> votes = {1, 0, 1, 1, 0, 1, 0};
  auto sum = RunSumVote(field, votes, /*threshold=*/4, rng);
  if (!sum.ok()) {
    std::fprintf(stderr, "%s\n", sum.status().ToString().c_str());
    return 1;
  }
  std::printf("sum vote: %zu voters, tally = %llu in favour "
              "(%d share messages; no party saw another's vote)\n",
              votes.size(), static_cast<unsigned long long>(sum->tally),
              sum->messages_sent);

  auto veto_pass = RunVetoVote(field, {1, 1, 1, 1, 1}, /*threshold=*/1, rng);
  auto veto_fail = RunVetoVote(field, {1, 1, 0, 1, 1}, /*threshold=*/1, rng);
  if (veto_pass.ok() && veto_fail.ok()) {
    std::printf("veto vote: unanimous run -> %llu (passed), one dissent -> "
                "%llu (vetoed)\n",
                static_cast<unsigned long long>(veto_pass->tally),
                static_cast<unsigned long long>(veto_fail->tally));
  }

  // ------------------------------------- §4.2 multi-server extension --
  XmlNode doc = MakeMedicalRecordsDocument(10, 7);
  FpCyclotomicRing ring = FpCyclotomicRing::Create(101).value();
  DeterministicPrf prf = DeterministicPrf::FromString("multi-server");
  TagMap::Options mopt;
  mopt.max_value = ring.MaxTagValue();
  TagMap map = TagMap::Build(doc.DistinctTags(), mopt, prf).value();
  auto data = BuildPolyTree(ring, map, doc).value();

  ChaChaRng ms_rng = ChaChaRng::FromString("shamir-servers");
  const int t = 3, n = 5;
  auto ms = ShamirMultiServer::Setup(ring, data, t, n, ms_rng);
  if (!ms.ok()) {
    std::fprintf(stderr, "%s\n", ms.status().ToString().c_str());
    return 1;
  }
  std::printf("\nShamir multi-server: document of %zu nodes split across %d "
              "servers, threshold %d\n", data.size(), n, t);

  uint64_t e = map.Value("prescription").value();
  std::printf("query point e = map(prescription) = %llu\n",
              static_cast<unsigned long long>(e));
  // Any t servers reconstruct the root evaluation; compare subsets.
  for (std::vector<int> subset : {std::vector<int>{0, 1, 2},
                                  std::vector<int>{1, 3, 4},
                                  std::vector<int>{0, 2, 4}}) {
    std::vector<uint64_t> evals;
    for (int s : subset) evals.push_back(ms->ServerEval(s, 0, e).value());
    uint64_t combined = ms->CombineEvals(subset, evals).value();
    std::printf("  servers {%d,%d,%d} -> root evaluation %llu%s\n",
                subset[0], subset[1], subset[2],
                static_cast<unsigned long long>(combined),
                combined == ring.EvalAt(data.nodes[0].poly, e).value()
                    ? " (correct)" : " (WRONG)");
  }
  // t-1 servers see only random-looking points.
  std::printf("  any %d servers alone hold Shamir shares that are "
              "information-theoretically independent of the data\n", t - 1);
  return 0;
}
