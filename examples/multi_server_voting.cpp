// Secure multi-party computation demos from paper §3 and §4.2:
//   1. anonymous sum vote and veto vote with no trusted third party;
//   2. k-of-n multi-server outsourcing through the Engine facade, where any
//      t servers answer a query over the real wire protocol and t-1 servers
//      learn nothing — including transparent failover when servers die.
//
//   $ ./multi_server_voting
#include <cstdio>

#include "core/engine.h"
#include "mpc/voting.h"
#include "xml/xml_generator.h"

int main() {
  using namespace polysse;

  // ---------------------------------------------------- §3 voting demo --
  auto field = PrimeField::Create(101).value();
  ChaChaRng rng = ChaChaRng::FromString("election-2004");

  std::vector<uint64_t> votes = {1, 0, 1, 1, 0, 1, 0};
  auto sum = RunSumVote(field, votes, /*threshold=*/4, rng);
  if (!sum.ok()) {
    std::fprintf(stderr, "%s\n", sum.status().ToString().c_str());
    return 1;
  }
  std::printf("sum vote: %zu voters, tally = %llu in favour "
              "(%d share messages; no party saw another's vote)\n",
              votes.size(), static_cast<unsigned long long>(sum->tally),
              sum->messages_sent);

  auto veto_pass = RunVetoVote(field, {1, 1, 1, 1, 1}, /*threshold=*/1, rng);
  auto veto_fail = RunVetoVote(field, {1, 1, 0, 1, 1}, /*threshold=*/1, rng);
  if (veto_pass.ok() && veto_fail.ok()) {
    std::printf("veto vote: unanimous run -> %llu (passed), one dissent -> "
                "%llu (vetoed)\n",
                static_cast<unsigned long long>(veto_pass->tally),
                static_cast<unsigned long long>(veto_fail->tally));
  }

  // ------------------------------------- §4.2 multi-server extension --
  XmlNode doc = MakeMedicalRecordsDocument(10, 7);
  DeterministicPrf seed = DeterministicPrf::FromString("multi-server");

  const int t = 3, n = 5;
  FpEngine::Deploy deploy;
  deploy.scheme = ShareScheme::kShamir;
  deploy.num_servers = n;
  deploy.threshold = t;
  auto engine = FpEngine::Outsource(doc, seed, deploy);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::printf("\nShamir multi-server: document of %zu nodes split across %d "
              "servers, threshold %d\n", (*engine)->store().size(), n, t);

  auto expected = (*engine)->Lookup("prescription").value().matches.size();
  std::printf("//prescription with all %d servers up -> %zu matches\n", n,
              expected);

  // Kill n-t servers: any t still answer, with mid-query failover.
  for (int s = 0; s < n - t; ++s) {
    FaultConfig down;
    down.fail_after_calls = 0;
    (*engine)->InjectFaults(static_cast<size_t>(s), down);
  }
  auto degraded = (*engine)->Lookup("prescription");
  if (degraded.ok()) {
    std::printf("with only %d servers reachable -> %zu matches "
                "(%zu transparent failovers)%s\n",
                t, degraded->matches.size(),
                degraded->stats.server_failovers,
                degraded->matches.size() == expected ? " (correct)"
                                                     : " (WRONG)");
  }

  // One more failure leaves t-1 servers: a clean refusal, never a wrong
  // answer — and t-1 servers' shares are information-theoretically
  // independent of the data.
  FaultConfig down;
  down.fail_after_calls = 0;
  (*engine)->InjectFaults(static_cast<size_t>(n - t), down);
  auto starved = (*engine)->Lookup("prescription");
  std::printf("with %d servers reachable -> %s\n", t - 1,
              starved.ok() ? "(answered?!)"
                           : starved.status().ToString().c_str());
  std::printf("  any %d servers alone hold Shamir shares that are "
              "information-theoretically independent of the data\n", t - 1);
  return 0;
}
