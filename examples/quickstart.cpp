// Quickstart: outsource an XML document to an untrusted server and query it
// without the server learning the data, the query, or the answer.
//
//   $ ./quickstart
//
// Walks through the full §4 pipeline behind the polysse::Engine facade:
// parse -> Outsource (tag map, poly tree, share split, endpoints) ->
// query //client -> verify answers -> one batched multi-query round.
#include <cstdio>

#include "core/engine.h"
#include "xml/xml_parser.h"

int main() {
  using namespace polysse;

  // 1. The data owner's document (the paper's Fig. 1 example, with text).
  const char* kXml = R"(
    <customers>
      <client><name>Alice</name></client>
      <client><name>Bob</name></client>
    </customers>)";
  auto doc = ParseXml(kXml);
  if (!doc.ok()) {
    std::fprintf(stderr, "parse error: %s\n", doc.status().ToString().c_str());
    return 1;
  }

  // 2. Outsource. The client secret is a single 32-byte seed; everything
  //    else (tag map, share polynomials) derives from it. The server side
  //    sits behind a ServerEndpoint, so every message is a real protocol
  //    exchange with byte accounting.
  DeterministicPrf seed = DeterministicPrf::FromString("quickstart-demo-seed");
  auto engine = FpEngine::Outsource(*doc, seed);
  if (!engine.ok()) {
    std::fprintf(stderr, "outsource error: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  std::printf("outsourced %zu elements, field p = %llu\n",
              (*engine)->store().size(),
              static_cast<unsigned long long>((*engine)->ring().p()));
  std::printf("server stores %zu bytes of share polynomials\n",
              (*engine)->store().PersistedBytes());
  std::printf("client keeps %zu bytes (seed + private tag map)\n\n",
              (*engine)->client().PersistedBytes());

  // 3. Query //client with untrusted-server verification (Eq. 3 checks).
  auto result = (*engine)->Lookup("client", VerifyMode::kVerified);
  if (!result.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("//client matched %zu element(s):\n", result->matches.size());
  for (const auto& m : result->matches) {
    std::printf("  node %d at path \"%s\"\n", m.node_id, m.path.c_str());
  }
  const QueryStats& s = result->stats;
  std::printf("\nprotocol cost: %zu of %zu nodes visited, %zu server evals, "
              "%zu B up / %zu B down, %zu verified reconstructions\n",
              s.nodes_visited, s.total_server_nodes, s.server_evals,
              s.transport.bytes_up, s.transport.bytes_down, s.reconstructions);
  std::printf("the server never saw: tag names, the query word, or which "
              "nodes matched.\n\n");

  // 4. Batched execution: many concurrent queries share one BFS walk.
  std::vector<Query> batch = {{"client", VerifyMode::kVerified},
                              {"name", VerifyMode::kVerified},
                              {"customers", VerifyMode::kOptimistic}};
  auto multi = (*engine)->RunQueries(batch);
  if (!multi.ok()) {
    std::fprintf(stderr, "batch error: %s\n",
                 multi.status().ToString().c_str());
    return 1;
  }
  std::printf("batched %zu queries in %zu shared protocol rounds:\n",
              batch.size(), multi->stats.rounds);
  for (size_t i = 0; i < batch.size(); ++i) {
    std::printf("  //%s -> %zu match(es)\n", batch[i].tag.c_str(),
                multi->per_tag[i].matches.size());
  }
  return 0;
}
