// The §6 future-work extensions in action: searching the *content* between
// the tags. Element text is ChaCha20-encrypted; two indexes answer word
// queries without decrypting everything:
//   * the hashed data-polynomial index (§6's own sketch), and
//   * a Goh-style Bloom secure index (paper ref [18]).
//
//   $ ./content_search
#include <cstdio>

#include "index/bloom_index.h"
#include "index/data_poly_index.h"
#include "xml/xml_generator.h"
#include "xml/xml_parser.h"

int main() {
  using namespace polysse;

  XmlNode doc = MakeMedicalRecordsDocument(40, /*seed=*/11);
  DeterministicPrf seed = DeterministicPrf::FromString("content-master");

  auto service = ContentSearchService::Build(doc, seed);
  if (!service.ok()) {
    std::fprintf(stderr, "%s\n", service.status().ToString().c_str());
    return 1;
  }
  BloomIndex bloom = BloomIndex::Build(doc, seed);

  std::printf("corpus: %zu elements; encrypted payloads %zu B; "
              "data-poly index %zu B; bloom index %zu B\n\n",
              doc.SubtreeSize(), service->ServerPayloadBytes(),
              service->ServerIndexBytes(), bloom.PersistedBytes());

  std::printf("%-12s | %8s %8s %6s %6s | %10s %8s %6s\n", "word",
              "dp:evals", "dp:fetch", "dp:fp", "hits", "bloom:cand",
              "bloom:fp", "hits");
  for (const char* word : {"alpha", "echo", "kilo", "500mg", "missing"}) {
    auto dp = service->Search(word);
    if (!dp.ok()) {
      std::fprintf(stderr, "%s\n", dp.status().ToString().c_str());
      return 1;
    }
    auto bl = bloom.Search(word, doc);
    std::printf("%-12s | %8zu %8zu %6zu %6zu | %10zu %8zu %6zu\n", word,
                dp->stats.nodes_evaluated, dp->stats.payloads_fetched,
                dp->stats.false_positives_removed, dp->match_paths.size(),
                bl.stats.candidates, bl.stats.false_positives,
                bl.verified_paths.size());
  }

  std::printf("\nthe data-poly index prunes whole subtrees (only %s of the "
              "tree is evaluated for rare words);\nthe bloom index tests "
              "every node but with constant-size filters.\n",
              "a fraction");

  // Round-trip one payload to show the encryption layer.
  auto hit = service->Search("alpha");
  if (hit.ok() && !hit->match_paths.empty()) {
    std::printf("\nfirst 'alpha' match at path \"%s\" — payload decrypted "
                "client-side only.\n", hit->match_paths[0].c_str());
  }
  return 0;
}
