// Collection quickstart: one client key, many documents, cross-document
// search with per-document answers, live add/remove — the paper's actual
// setting (a server hosting a database of encrypted XML documents, §2).
// Runs argument-free with a deterministic set of documents; doubles as a
// ctest smoke test (label `example`).
#include <cstdio>

#include "core/collection.h"
#include "index/secure_collection.h"
#include "xml/xml_parser.h"

using namespace polysse;

namespace {

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

void PrintResult(const char* query, const CollectionResult& r) {
  std::printf("%s:\n", query);
  if (r.per_doc.empty()) std::printf("  (no matches)\n");
  for (const auto& [doc_id, result] : r.per_doc) {
    std::printf("  doc %llu:", static_cast<unsigned long long>(doc_id));
    for (const auto& m : result.matches)
      std::printf(" %s", m.path.empty() ? "(root)" : m.path.c_str());
    std::printf("\n");
  }
  std::printf("  [%zu rounds, %zu messages up — ONE walk across all docs]\n",
              r.stats.rounds, r.stats.transport.messages_up);
}

}  // namespace

int main() {
  DeterministicPrf seed = DeterministicPrf::FromString("collection-demo");

  // An empty collection: additive 3-server deployment, one client key.
  FpCollection::Deploy deploy;
  deploy.scheme = ShareScheme::kAdditive;
  deploy.num_servers = 3;
  auto col_or = FpCollection::Create(seed, deploy);
  if (!col_or.ok()) return Fail(col_or.status());
  auto& col = *col_or;

  // Three patients' records arrive one by one — each Add ships ONLY the
  // new document's share trees to the servers.
  auto parse = [](const char* xml) { return ParseXml(xml).value(); };
  struct Doc {
    DocId id;
    const char* xml;
  };
  const Doc kDocs[] = {
      {101, "<patient><name/><visit><diagnosis/><drug/></visit></patient>"},
      {102, "<patient><name/><visit><diagnosis/></visit>"
            "<visit><drug/></visit></patient>"},
      {103, "<patient><name/><insurance/></patient>"},
  };
  for (const Doc& doc : kDocs) {
    if (Status s = col->Add(doc.id, parse(doc.xml)); !s.ok()) return Fail(s);
  }
  std::printf("collection: %zu documents, %zu nodes, %zu servers (additive)\n\n",
              col->num_docs(), col->total_nodes(), col->num_servers());

  // Which of my documents mention a diagnosis? One shared walk answers.
  auto diag = col->Search("diagnosis");
  if (!diag.ok()) return Fail(diag.status());
  PrintResult("//diagnosis", *diag);

  // Cross-document XPath: drugs prescribed during a visit.
  auto drugs = col->SearchXPath("//visit/drug");
  if (!drugs.ok()) return Fail(drugs.status());
  PrintResult("//visit/drug", *drugs);

  // Patient 102 leaves; live removal, nobody else re-outsourced.
  if (Status s = col->Remove(102); !s.ok()) return Fail(s);
  auto after = col->Search("diagnosis");
  if (!after.ok()) return Fail(after.status());
  std::printf("\nafter removing doc 102 —\n");
  PrintResult("//diagnosis", *after);

  // The content layer: encrypted payloads decrypt per matched document.
  auto svc_or = SecureCollectionService::Create(
      DeterministicPrf::FromString("collection-demo-content"));
  if (!svc_or.ok()) return Fail(svc_or.status());
  auto& svc = *svc_or;
  if (Status s = svc->Add(1, parse("<note><body>see cardiologist</body>"
                                   "</note>"));
      !s.ok())
    return Fail(s);
  if (Status s = svc->Add(2, parse("<note><body>all clear</body></note>"));
      !s.ok())
    return Fail(s);
  auto bodies = svc->Query("//body");
  if (!bodies.ok()) return Fail(bodies.status());
  std::printf("\ndecrypted content per document:\n");
  for (const auto& [doc_id, matches] : *bodies)
    for (const auto& m : matches)
      std::printf("  doc %llu: \"%s\"\n",
                  static_cast<unsigned long long>(doc_id), m.text.c_str());

  std::printf("\nOK\n");
  return 0;
}
