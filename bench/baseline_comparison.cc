// E11 — the paper's positioning: interactive tree search vs (1) the intro's
// strawman "download the whole database locally" and (2) linear-scan
// searchable encryption in the spirit of ref [2] (Song-Wagner-Perrig),
// with plaintext search as the cost floor.
//
// Reports per-query work and bandwidth, plus wall-clock time, across
// document sizes. Shape expectation: polysse touches O(answer-related)
// nodes; the baselines pay Theta(n) in scan work (SWP) or Theta(store) in
// bandwidth (download).
#include <chrono>
#include <cstdio>

#include "baseline/naive_download.h"
#include "baseline/plaintext_search.h"
#include "baseline/swp_linear.h"
#include "core/outsource.h"
#include "core/query_session.h"
#include "testing/deploy_helpers.h"
#include "xml/xml_generator.h"

namespace {
double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}
}  // namespace

int main() {
  using namespace polysse;
  using namespace polysse::testing;
  std::printf("=== E11 / baselines: polysse vs download-all vs SWP-linear "
              "vs plaintext ===\n\n");
  DeterministicPrf seed = DeterministicPrf::FromString("baseline-bench");

  std::printf("%7s %-10s | %9s %9s %12s %9s | %8s\n", "nodes", "scheme",
              "matches", "scanned", "bytes_down", "ms/query", "correct");
  for (size_t n : {100u, 1000u, 10000u}) {
    XmlGeneratorOptions gen;
    gen.num_nodes = n;
    gen.tag_alphabet = 16;
    gen.zipf_s = 1.0;
    gen.seed = n;
    XmlNode doc = GenerateXmlTree(gen);
    const std::string tag = doc.DistinctTags().back();  // a rare tag
    auto oracle = PlaintextLookup(doc, tag);

    // Plaintext floor.
    {
      auto t0 = std::chrono::steady_clock::now();
      auto r = PlaintextLookup(doc, tag);
      std::printf("%7zu %-10s | %9zu %9zu %12s %9.3f | %8s\n", n, "plain",
                  r.match_paths.size(), r.stats.nodes_scanned, "-", MsSince(t0),
                  "yes");
    }
    // polysse interactive (verified).
    {
      auto dep = MakeFpDeployment(doc, seed);
      if (dep.ok()) {
        TestSession<FpCyclotomicRing> session(&dep->client, &dep->server);
        auto t0 = std::chrono::steady_clock::now();
        auto r = session.Lookup(tag, VerifyMode::kVerified);
        double ms = MsSince(t0);
        if (r.ok()) {
          std::printf("%7zu %-10s | %9zu %9zu %12zu %9.3f | %8s\n", n,
                      "polysse", r->matches.size(), r->stats.nodes_visited,
                      r->stats.transport.bytes_down, ms,
                      r->matches.size() == oracle.match_paths.size() ? "yes"
                                                                     : "NO");
        }
        // Naive download (the intro's strawman) on the same deployment.
        auto t1 = std::chrono::steady_clock::now();
        auto nd = NaiveDownloadLookup(&dep->client, &dep->server, tag);
        double nd_ms = MsSince(t1);
        if (nd.ok()) {
          std::printf("%7zu %-10s | %9zu %9zu %12zu %9.3f | %8s\n", n,
                      "download", nd->match_paths.size(),
                      nd->stats.nodes_scanned, nd->stats.bytes_down, nd_ms,
                      nd->match_paths.size() == oracle.match_paths.size()
                          ? "yes" : "NO");
        }
      }
    }
    // SWP-style linear scan.
    {
      SwpLinearClient client(seed);
      SwpLinearServer server = client.Outsource(doc);
      auto t0 = std::chrono::steady_clock::now();
      auto r = client.Lookup(server, tag);
      std::printf("%7zu %-10s | %9zu %9zu %12zu %9.3f | %8s\n", n, "swp-scan",
                  r.match_paths.size(), r.stats.nodes_scanned,
                  r.stats.bytes_down, MsSince(t0),
                  r.match_paths.size() == oracle.match_paths.size() ? "yes"
                                                                    : "NO");
    }
    std::printf("\n");
  }
  std::printf("shape check (paper): polysse's scanned-node count stays far "
              "below n for selective queries while swp-scan is exactly n "
              "and download moves the entire store.\n");
  return 0;
}
