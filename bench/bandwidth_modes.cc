// E10 — §4.3 closing remark: trusting the server, "only the constant factor
// (without x) of each polynomial stored on the server has to be
// transmitted. This reduces bandwidth and increases efficiency but
// decreases security."
//
// Reports bytes down per query for the three verify modes in both rings,
// plus the trusted mode's fallback count on nodes whose polynomial wraps
// the ring (where constant-only reconstruction is unsound).
#include <cstdio>

#include "core/outsource.h"
#include "core/query_session.h"
#include "testing/deploy_helpers.h"
#include "xml/xml_generator.h"

int main() {
  using namespace polysse;
  using namespace polysse::testing;
  std::printf("=== E10 / bandwidth: verified vs trusted const-only vs "
              "optimistic ===\n\n");
  DeterministicPrf seed = DeterministicPrf::FromString("bandwidth-bench");

  std::printf("%-14s %6s | %12s %12s %12s | %9s %9s\n", "ring", "nodes",
              "optimistic", "verified", "const-only", "recon", "fallbacks");
  for (size_t n : {50u, 400u, 2000u}) {
    XmlGeneratorOptions gen;
    gen.num_nodes = n;
    gen.tag_alphabet = 10;
    gen.seed = n;
    XmlNode doc = GenerateXmlTree(gen);
    const std::string tag = doc.DistinctTags()[2];

    {
      FpOutsourceOptions fopt;
      fopt.p = 101;  // n <= 99 wrap-free; larger documents wrap
      auto dep = MakeFpDeployment(doc, seed, fopt);
      if (dep.ok()) {
        TestSession<FpCyclotomicRing> session(&dep->client, &dep->server);
        auto opt = session.Lookup(tag, VerifyMode::kOptimistic);
        auto ver = session.Lookup(tag, VerifyMode::kVerified);
        auto tru = session.Lookup(tag, VerifyMode::kTrustedConstOnly);
        if (opt.ok() && ver.ok() && tru.ok()) {
          std::printf("%-14s %6zu | %12zu %12zu %12zu | %9zu %9zu\n",
                      "Fp p=101", n, opt->stats.transport.bytes_down,
                      ver->stats.transport.bytes_down,
                      tru->stats.transport.bytes_down,
                      ver->stats.reconstructions,
                      tru->stats.trusted_fallbacks);
        }
      }
    }
    {
      auto dep = MakeZDeployment(doc, seed);
      if (dep.ok()) {
        TestSession<ZQuotientRing> session(&dep->client, &dep->server);
        auto opt = session.Lookup(tag, VerifyMode::kOptimistic);
        auto ver = session.Lookup(tag, VerifyMode::kVerified);
        auto tru = session.Lookup(tag, VerifyMode::kTrustedConstOnly);
        if (opt.ok() && ver.ok() && tru.ok()) {
          std::printf("%-14s %6zu | %12zu %12zu %12zu | %9zu %9zu\n",
                      "Z[x]/(x^2+1)", n, opt->stats.transport.bytes_down,
                      ver->stats.transport.bytes_down,
                      tru->stats.transport.bytes_down,
                      ver->stats.reconstructions,
                      tru->stats.trusted_fallbacks);
        }
      }
    }
  }
  std::printf("\nshape check (paper): const-only sits between optimistic and "
              "verified; the gap to verified widens with polynomial size "
              "(large p or large Z coefficients). Wrapped nodes force "
              "full-polynomial fallbacks.\n");
  return 0;
}
