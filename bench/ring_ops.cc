// E13 — microbenchmarks of the ring kernels every experiment sits on:
// element multiply / evaluate / share / SolveTag in both rings, BigInt
// arithmetic, and the PRF share derivation. google-benchmark binary.
#include <benchmark/benchmark.h>

#include "bigint/bigint.h"
#include "core/sharing.h"
#include "crypto/prf.h"
#include "field/simd_eval.h"
#include "nt/modular.h"
#include "poly/fp_conv.h"
#include "ring/fp_cyclotomic_ring.h"
#include "ring/z_quotient_ring.h"

namespace polysse {
namespace {

// ------------------------------------------- word-level modular kernels --
//
// Dependent chains (each product feeds the next) so the benchmark measures
// the latency that Horner evaluation and convolution inner loops actually
// pay, not pipelined throughput. The Montgomery/plain pair is the ">= 2x on
// modular-multiplication-bound cases" acceptance gate of the fast-path PR.

void BM_MulModPlainChain(benchmark::State& state) {
  const uint64_t m = (1ull << 61) - 1;
  uint64_t x = 1234567890123456789ull % m;
  const uint64_t c = 987654321098765432ull % m;
  for (auto _ : state) {
    x = MulMod(x, c, m);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_MulModPlainChain);

void BM_MulModMontgomeryChain(benchmark::State& state) {
  const uint64_t m = (1ull << 61) - 1;
  const Montgomery mont(m);
  uint64_t x = mont.ToMont(1234567890123456789ull % m);
  const uint64_t c = mont.ToMont(987654321098765432ull % m);
  for (auto _ : state) {
    x = mont.Mul(x, c);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_MulModMontgomeryChain);

// ------------------------------------------------ convolution kernels --
//
// Reference (plain schoolbook) vs. fast (Montgomery schoolbook + Karatsuba)
// on identical coefficient vectors; the crossover documented in BENCH.md
// comes from this pair.

FpPoly RandomDensePoly(const PrimeField& field, size_t n, const char* seed) {
  ChaChaRng rng = ChaChaRng::FromString(seed);
  std::vector<uint64_t> coeffs(n);
  for (size_t i = 0; i < n; ++i) coeffs[i] = field.Uniform(rng);
  return FpPoly::FromCanonical(field, std::move(coeffs));
}

void BM_FpPolyMulReference(benchmark::State& state) {
  const PrimeField field = PrimeField::Create((1ull << 61) - 1).value();
  const size_t n = static_cast<size_t>(state.range(0));
  FpPoly a = RandomDensePoly(field, n, "conv-a");
  FpPoly b = RandomDensePoly(field, n, "conv-b");
  FpMulPath prev = SetFpMulPath(FpMulPath::kReference);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
  SetFpMulPath(prev);
  state.SetLabel("plain schoolbook");
}
BENCHMARK(BM_FpPolyMulReference)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_FpPolyMulFast(benchmark::State& state) {
  const PrimeField field = PrimeField::Create((1ull << 61) - 1).value();
  const size_t n = static_cast<size_t>(state.range(0));
  FpPoly a = RandomDensePoly(field, n, "conv-a");
  FpPoly b = RandomDensePoly(field, n, "conv-b");
  FpMulPath prev = SetFpMulPath(FpMulPath::kFast);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
  SetFpMulPath(prev);
  state.SetLabel("Montgomery + Karatsuba");
}
BENCHMARK(BM_FpPolyMulFast)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

ZPoly RandomZPolyLimbs(size_t n, int limbs, const char* seed) {
  ChaChaRng rng = ChaChaRng::FromString(seed);
  std::vector<BigInt> coeffs(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<uint8_t> bytes(static_cast<size_t>(limbs) * 8);
    rng.Fill(bytes);
    coeffs[i] = BigInt::FromLittleEndianBytes(bytes);
  }
  return ZPoly(std::move(coeffs));
}

void BM_ZPolyMulReference(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  ZPoly a = RandomZPolyLimbs(n, 4, "zconv-a");
  ZPoly b = RandomZPolyLimbs(n, 4, "zconv-b");
  ZMulPath prev = SetZMulPath(ZMulPath::kReference);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
  SetZMulPath(prev);
}
BENCHMARK(BM_ZPolyMulReference)->Arg(16)->Arg(64)->Arg(256);

void BM_ZPolyMulFast(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  ZPoly a = RandomZPolyLimbs(n, 4, "zconv-a");
  ZPoly b = RandomZPolyLimbs(n, 4, "zconv-b");
  ZMulPath prev = SetZMulPath(ZMulPath::kFast);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
  SetZMulPath(prev);
}
BENCHMARK(BM_ZPolyMulFast)->Arg(16)->Arg(64)->Arg(256);

// ------------------------------------------- NTT vs. Karatsuba crossover --
//
// Same coefficient vectors through the middle and top convolution tiers on
// an NTT-friendly modulus; the NTT crossover in BENCH.md and the default
// NTT threshold in fp_conv.cc come from this pair.

void BM_FpPolyMulKaratsuba(benchmark::State& state) {
  const PrimeField field = PrimeField::Create(998244353).value();
  const size_t n = static_cast<size_t>(state.range(0));
  FpPoly a = RandomDensePoly(field, n, "ntt-a");
  FpPoly b = RandomDensePoly(field, n, "ntt-b");
  FpMulPath prev = SetFpMulPath(FpMulPath::kKaratsuba);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
  SetFpMulPath(prev);
  state.SetLabel("Karatsuba forced, p=998244353");
}
BENCHMARK(BM_FpPolyMulKaratsuba)->Arg(64)->Arg(128)->Arg(256)->Arg(1024)->Arg(4096);

void BM_FpPolyMulNtt(benchmark::State& state) {
  const PrimeField field = PrimeField::Create(998244353).value();
  const size_t n = static_cast<size_t>(state.range(0));
  FpPoly a = RandomDensePoly(field, n, "ntt-a");
  FpPoly b = RandomDensePoly(field, n, "ntt-b");
  FpMulPath prev = SetFpMulPath(FpMulPath::kFast);
  size_t prev_t = SetFpNttThreshold(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
  SetFpNttThreshold(prev_t);
  SetFpMulPath(prev);
  state.SetLabel("NTT forced, p=998244353");
}
BENCHMARK(BM_FpPolyMulNtt)->Arg(64)->Arg(128)->Arg(256)->Arg(1024)->Arg(4096);

// ------------------------------------------------- batch share evaluation --
//
// The EvalRequest hot path: one coefficient vector evaluated at four points.
// The SIMD row runs the AVX2 REDC lane kernel (one 4-point sweep); the
// scalar row is the same work as four independent Montgomery Horner calls.
// Their ratio is the batch-evaluation acceptance gate.

void BM_BatchEval4Simd(benchmark::State& state) {
  const PrimeField field = PrimeField::Create(998244353).value();
  const size_t n = static_cast<size_t>(state.range(0));
  FpPoly a = RandomDensePoly(field, n, "beval");
  const std::vector<uint64_t> points = {2, 3, 5, 7};
  std::vector<uint64_t> out(points.size());
  for (auto _ : state) {
    BatchHornerEval(field, a.coeffs(), points, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(BatchEvalUsesSimd(field) ? "AVX2 4-lane sweep"
                                          : "scalar (no AVX2 on this host)");
}
BENCHMARK(BM_BatchEval4Simd)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_BatchEval4Scalar(benchmark::State& state) {
  const PrimeField field = PrimeField::Create(998244353).value();
  const size_t n = static_cast<size_t>(state.range(0));
  FpPoly a = RandomDensePoly(field, n, "beval");
  const std::vector<uint64_t> points = {2, 3, 5, 7};
  std::vector<uint64_t> out(points.size());
  BatchEvalPath prev = SetBatchEvalPath(BatchEvalPath::kScalar);
  for (auto _ : state) {
    BatchHornerEval(field, a.coeffs(), points, out);
    benchmark::DoNotOptimize(out.data());
  }
  SetBatchEvalPath(prev);
  state.SetLabel("4x scalar Montgomery Horner");
}
BENCHMARK(BM_BatchEval4Scalar)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

// ----------------------------------------------------------- F_p ring --

void BM_FpRingMul(benchmark::State& state) {
  const uint64_t p = static_cast<uint64_t>(state.range(0));
  FpCyclotomicRing ring = FpCyclotomicRing::Create(p).value();
  ChaChaRng rng = ChaChaRng::FromString("fpmul");
  FpPoly a = ring.Random(rng);
  FpPoly b = ring.Random(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.Mul(a, b));
  }
  state.SetLabel("p=" + std::to_string(p));
}
// 257 and 1009 contrast the cyclic-NTT shortcut (p-1 = 2^8) against a
// same-magnitude modulus that must take Karatsuba + fold (1008 = 2^4 * 63).
BENCHMARK(BM_FpRingMul)->Arg(11)->Arg(101)->Arg(257)->Arg(1009);

void BM_FpRingEval(benchmark::State& state) {
  const uint64_t p = static_cast<uint64_t>(state.range(0));
  FpCyclotomicRing ring = FpCyclotomicRing::Create(p).value();
  ChaChaRng rng = ChaChaRng::FromString("fpeval");
  FpPoly a = ring.Random(rng);
  uint64_t e = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.EvalAt(a, e).value());
    e = e % (p - 1) + 1;
  }
}
BENCHMARK(BM_FpRingEval)->Arg(11)->Arg(101)->Arg(1009)->Arg(65537);

void BM_FpSolveTag(benchmark::State& state) {
  const uint64_t p = static_cast<uint64_t>(state.range(0));
  FpCyclotomicRing ring = FpCyclotomicRing::Create(p).value();
  FpPoly g = ring.One();
  for (uint64_t t = 1; t <= 6; ++t) g = ring.Mul(g, ring.XMinus(t).value());
  FpPoly f = ring.Mul(ring.XMinus(7).value(), g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.SolveTag(f, g).value());
  }
}
BENCHMARK(BM_FpSolveTag)->Arg(11)->Arg(101)->Arg(1009);

void BM_FpShareDerive(benchmark::State& state) {
  const uint64_t p = static_cast<uint64_t>(state.range(0));
  FpCyclotomicRing ring = FpCyclotomicRing::Create(p).value();
  DeterministicPrf prf = DeterministicPrf::FromString("derive");
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DeriveClientShare(ring, prf, "0/1/" + std::to_string(i++ % 64), {}));
  }
  state.SetLabel("seed-only client cost per node");
}
BENCHMARK(BM_FpShareDerive)->Arg(11)->Arg(101)->Arg(1009);

// ------------------------------------------------------------- Z ring --

ZPoly ChainProduct(const ZQuotientRing& ring, int factors) {
  ZPoly acc = ring.One();
  for (int i = 0; i < factors; ++i) {
    acc = ring.Mul(acc, ring.XMinus(2 + (i % 40)).value());
  }
  return acc;
}

void BM_ZRingMulAfterChain(benchmark::State& state) {
  // Multiplying residues whose coefficients grew from `range` linear
  // factors — the §5 coefficient-growth cost in action.
  ZQuotientRing ring = ZQuotientRing::Create(ZPoly({1, 0, 1})).value();
  ZPoly a = ChainProduct(ring, static_cast<int>(state.range(0)));
  ZPoly b = ChainProduct(ring, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.Mul(a, b));
  }
  state.SetLabel("coeff_bits~" + std::to_string(a.MaxCoeffBits()));
}
BENCHMARK(BM_ZRingMulAfterChain)->Arg(8)->Arg(64)->Arg(512);

void BM_ZRingEval(benchmark::State& state) {
  ZQuotientRing ring = ZQuotientRing::Create(ZPoly({1, 0, 1})).value();
  ZPoly a = ChainProduct(ring, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.EvalAt(a, 6).value());
  }
}
BENCHMARK(BM_ZRingEval)->Arg(8)->Arg(64)->Arg(512);

void BM_ZSolveTag(benchmark::State& state) {
  ZQuotientRing ring = ZQuotientRing::Create(ZPoly({1, 0, 1})).value();
  ZPoly g = ChainProduct(ring, static_cast<int>(state.range(0)));
  ZPoly f = ring.Mul(ring.XMinus(9).value(), g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.SolveTag(f, g).value());
  }
}
BENCHMARK(BM_ZSolveTag)->Arg(8)->Arg(64)->Arg(512);

// -------------------------------------------------------------- BigInt --

BigInt RandomBig(int limbs, const char* seed) {
  ChaChaRng rng = ChaChaRng::FromString(seed);
  std::vector<uint8_t> bytes(limbs * 8);
  rng.Fill(bytes);
  return BigInt::FromLittleEndianBytes(bytes);
}

void BM_BigIntMul(benchmark::State& state) {
  BigInt a = RandomBig(static_cast<int>(state.range(0)), "a");
  BigInt b = RandomBig(static_cast<int>(state.range(0)), "b");
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
  state.SetLabel(std::to_string(state.range(0)) + " limbs");
}
BENCHMARK(BM_BigIntMul)->Arg(2)->Arg(16)->Arg(64)->Arg(256);

void BM_BigIntDivRem(benchmark::State& state) {
  BigInt a = RandomBig(static_cast<int>(state.range(0)) * 2, "num");
  BigInt b = RandomBig(static_cast<int>(state.range(0)), "den");
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.DivRem(b));
  }
}
BENCHMARK(BM_BigIntDivRem)->Arg(2)->Arg(16)->Arg(64);

void BM_BigIntModU64(benchmark::State& state) {
  BigInt a = RandomBig(static_cast<int>(state.range(0)), "mod");
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.ModU64(1000003));
  }
}
BENCHMARK(BM_BigIntModU64)->Arg(2)->Arg(16)->Arg(64);

// ---------------------------------------------------------------- PRF --

void BM_PrfStream(benchmark::State& state) {
  DeterministicPrf prf = DeterministicPrf::FromString("bench");
  int i = 0;
  for (auto _ : state) {
    ChaChaRng rng = prf.Stream("label/" + std::to_string(i++ % 1024));
    benchmark::DoNotOptimize(rng.NextU64());
  }
}
BENCHMARK(BM_PrfStream);

void BM_Sha256Block(benchmark::State& state) {
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)));
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint8_t>(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256Block)->Arg(64)->Arg(4096);

}  // namespace
}  // namespace polysse

BENCHMARK_MAIN();
