// E7 — the §5 storage analysis, measured against the paper's analytic
// orders:  plaintext n log p;  F_p ring n(p-1) log p;  Z/r ring
// n(d+1) log(p^n) = n^2 (d+1) log p.
//
// The table reports measured server bytes (actual serialized share trees)
// next to the model predictions, plus the fitted growth exponent of the
// Z-ring coefficients — the paper's claim is that coefficient bit-length
// grows ~linearly in n, making total storage quadratic.
#include <cmath>
#include <cstdio>

#include "core/outsource.h"
#include "core/storage_model.h"
#include "testing/deploy_helpers.h"
#include "xml/xml_generator.h"

int main() {
  using namespace polysse;
  using namespace polysse::testing;
  std::printf("=== E7 / section 5: storage costs ===\n\n");
  std::printf("%s\n", StorageReportHeader().c_str());

  DeterministicPrf seed = DeterministicPrf::FromString("storage-bench");
  std::vector<double> z_measured, z_nodes;

  for (size_t n : {15u, 63u, 255u, 1023u}) {
    XmlGeneratorOptions gen;
    gen.num_nodes = n;
    gen.tag_alphabet = 8;
    gen.max_fanout = 4;
    gen.seed = 7;
    XmlNode doc = GenerateXmlTree(gen);

    for (uint64_t p : {11ull, 101ull}) {
      FpOutsourceOptions fopt;
      fopt.p = p;
      auto dep = MakeFpDeployment(doc, seed, fopt);
      if (!dep.ok()) continue;
      StorageReport r = MeasureStorage(dep->ring, doc, dep->server);
      char label[32];
      std::snprintf(label, sizeof(label), "Fp p=%llu",
                    static_cast<unsigned long long>(p));
      std::printf("%s\n", StorageReportRow(r, label).c_str());
    }
    for (int d : {2, 4}) {
      ZOutsourceOptions zopt;
      // x^2+1 and x^4+x^3+x^2+x+1 (both irreducible over Z).
      zopt.r = d == 2 ? ZPoly({1, 0, 1}) : ZPoly({1, 1, 1, 1, 1});
      zopt.coeff_bits = 128;
      auto dep = MakeZDeployment(doc, seed, zopt);
      if (!dep.ok()) {
        std::printf("Z d=%d n=%zu: %s\n", d, n,
                    dep.status().ToString().c_str());
        continue;
      }
      StorageReport r = MeasureStorage(dep->ring, doc, dep->server, 11);
      char label[32];
      std::snprintf(label, sizeof(label), "Z[x]/r d=%d", d);
      std::printf("%s\n", StorageReportRow(r, label).c_str());
      if (d == 2) {
        z_measured.push_back(static_cast<double>(r.server_measured_bytes));
        z_nodes.push_back(static_cast<double>(n));
      }
    }
    std::printf("\n");
  }

  auto fit_exponent = [](const std::vector<double>& xs,
                         const std::vector<double>& ys) {
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (size_t i = 0; i < xs.size(); ++i) {
      double x = std::log(xs[i]);
      double y = std::log(ys[i]);
      sx += x;
      sy += y;
      sxx += x * x;
      sxy += x * y;
    }
    double k = static_cast<double>(xs.size());
    return (k * sxy - sx * sy) / (k * sxx - sx * sx);
  };

  if (z_nodes.size() >= 2) {
    std::printf("Z-ring growth on random trees: n^%.2f — only the root's "
                "coefficients reach the paper's n log p bits; interior "
                "nodes stay small, so totals grow ~n log n.\n",
                fit_exponent(z_nodes, z_measured));
  }

  // The paper's n^2 bound is tight on degenerate path-shaped trees, where
  // EVERY suffix node aggregates a long factor chain.
  std::printf("\n--- worst case: path-shaped documents (every node one "
              "child) ---\n");
  std::vector<double> path_nodes, path_measured;
  for (size_t n : {16u, 64u, 256u, 1024u}) {
    XmlNode path_doc("t0");
    XmlNode* cur = &path_doc;
    for (size_t i = 1; i < n; ++i) {
      // Built with += rather than "t" + to_string(...): the operator+
      // rvalue-insert path trips a GCC 12 -Wrestrict false positive at -O3.
      std::string tag = "t";
      tag += std::to_string(i % 8);
      cur = &cur->AddChild(tag);
    }
    ZOutsourceOptions zopt;
    zopt.coeff_bits = 64;  // small share floor so data growth dominates
    auto dep = MakeZDeployment(path_doc, seed, zopt);
    if (!dep.ok()) continue;
    StorageReport r = MeasureStorage(dep->ring, path_doc, dep->server, 11);
    std::printf("%s\n", StorageReportRow(r, "Z path-tree").c_str());
    path_nodes.push_back(static_cast<double>(n));
    path_measured.push_back(static_cast<double>(r.server_measured_bytes));
  }
  if (path_nodes.size() >= 2) {
    std::printf("Z-ring growth on path trees: n^%.2f (paper model: n^2 from "
                "n(d+1) log(p^n))\n",
                fit_exponent(path_nodes, path_measured));
  }

  std::printf("\nshape check (paper): Fp storage is ~(p-1)x plaintext and "
              "linear in n; Z/r storage is superlinear — n^2 in the paper's "
              "worst case (path trees), ~n log n on bushy documents.\n");
  return 0;
}
