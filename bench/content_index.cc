// E14 — the §6 future-work extensions, quantified: hashed data-polynomial
// index vs Goh-style Bloom index for content search. Reports storage,
// query work, and false-positive behaviour vs Bloom filter size.
#include <cstdio>

#include "index/bloom_index.h"
#include "index/data_poly_index.h"
#include "xml/xml_generator.h"

int main() {
  using namespace polysse;
  std::printf("=== E14 / content-search extensions (§6) ===\n\n");
  DeterministicPrf seed = DeterministicPrf::FromString("content-bench");

  const char* words[] = {"alpha", "bravo", "carol", "delta", "echo", "fox",
                         "golf",  "hotel", "india", "juliet", "kilo", "lima"};

  std::printf("%8s | %12s %10s %8s | %12s %8s\n", "nodes", "dp:index_B",
              "dp:evals", "dp:fp", "bloom:B", "bloom:fp");
  for (size_t patients : {20u, 80u, 320u}) {
    XmlNode doc = MakeMedicalRecordsDocument(patients, 13);
    auto service = ContentSearchService::Build(doc, seed);
    if (!service.ok()) continue;
    BloomIndex bloom = BloomIndex::Build(doc, seed);

    size_t dp_evals = 0, dp_fp = 0, bloom_fp = 0;
    for (const char* w : words) {
      auto dp = service->Search(w);
      if (dp.ok()) {
        dp_evals += dp->stats.nodes_evaluated;
        dp_fp += dp->stats.false_positives_removed;
      }
      bloom_fp += bloom.Search(w, doc).stats.false_positives;
    }
    std::printf("%8zu | %12zu %10zu %8zu | %12zu %8zu\n", doc.SubtreeSize(),
                service->ServerIndexBytes(), dp_evals / 12, dp_fp,
                bloom.PersistedBytes(), bloom_fp);
  }

  std::printf("\n--- bloom false positives vs filter size (40 patients, 12 "
              "query words) ---\n");
  XmlNode doc = MakeMedicalRecordsDocument(40, 14);
  std::printf("%10s %8s | %8s %10s\n", "bits/node", "hashes", "fp", "bytes");
  for (size_t bits : {16u, 64u, 256u, 1024u}) {
    for (int hashes : {2, 4}) {
      BloomIndex::Options opt;
      opt.bits_per_node = bits;
      opt.num_hashes = hashes;
      BloomIndex index = BloomIndex::Build(doc, seed, opt);
      size_t fp = 0;
      for (const char* w : words) fp += index.Search(w, doc).stats.false_positives;
      std::printf("%10zu %8d | %8zu %10zu\n", bits, hashes, fp,
                  index.PersistedBytes());
    }
  }
  std::printf("\nshape check: the data-poly index prunes subtrees (evals << "
              "nodes for rare words) and has only hash-collision false "
              "positives; bloom cost is flat per node with FP rate falling "
              "exponentially in bits/word.\n");
  return 0;
}
