// E8 companion — statistically sound end-to-end latency of the full wire
// protocol (outsource once, measure Lookup) as document size and verify
// mode scale. google-benchmark binary.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "core/outsource.h"
#include "core/query_session.h"
#include "testing/deploy_helpers.h"
#include "xml/xml_generator.h"

namespace polysse {
namespace {

using testing::FpDeployment;
using testing::MakeFpDeployment;
using testing::TestSession;

struct Deployment {
  XmlNode doc;
  FpDeployment dep;
  std::string rare_tag;
};

Deployment& SharedDeployment(size_t n) {
  static std::map<size_t, std::unique_ptr<Deployment>> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    XmlGeneratorOptions gen;
    gen.num_nodes = n;
    gen.tag_alphabet = 16;
    gen.zipf_s = 1.0;
    gen.seed = n;
    XmlNode doc = GenerateXmlTree(gen);
    DeterministicPrf seed = DeterministicPrf::FromString("scaling");
    auto dep = MakeFpDeployment(doc, seed).value();
    auto holder = std::make_unique<Deployment>(
        Deployment{std::move(doc), std::move(dep), ""});
    holder->rare_tag = holder->doc.DistinctTags().back();
    it = cache.emplace(n, std::move(holder)).first;
  }
  return *it->second;
}

void BM_LookupVerified(benchmark::State& state) {
  Deployment& d = SharedDeployment(static_cast<size_t>(state.range(0)));
  TestSession<FpCyclotomicRing> session(&d.dep.client, &d.dep.server);
  for (auto _ : state) {
    auto r = session.Lookup(d.rare_tag, VerifyMode::kVerified);
    if (!r.ok()) state.SkipWithError("lookup failed");
    benchmark::DoNotOptimize(r);
  }
  auto r = session.Lookup(d.rare_tag, VerifyMode::kVerified).value();
  state.counters["visited_frac"] = r.stats.VisitedFraction();
  state.counters["bytes_down"] = static_cast<double>(r.stats.transport.bytes_down);
}
BENCHMARK(BM_LookupVerified)->Arg(100)->Arg(1000)->Arg(10000);

void BM_LookupOptimistic(benchmark::State& state) {
  Deployment& d = SharedDeployment(static_cast<size_t>(state.range(0)));
  TestSession<FpCyclotomicRing> session(&d.dep.client, &d.dep.server);
  for (auto _ : state) {
    auto r = session.Lookup(d.rare_tag, VerifyMode::kOptimistic);
    if (!r.ok()) state.SkipWithError("lookup failed");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_LookupOptimistic)->Arg(100)->Arg(1000)->Arg(10000);

void BM_XPathAllAtOnce(benchmark::State& state) {
  Deployment& d = SharedDeployment(static_cast<size_t>(state.range(0)));
  TestSession<FpCyclotomicRing> session(&d.dep.client, &d.dep.server);
  auto tags = d.doc.DistinctTags();
  auto query =
      XPathQuery::Parse("//" + tags[0] + "//" + tags[1 % tags.size()]).value();
  for (auto _ : state) {
    auto r = session.EvaluateXPath(query, XPathStrategy::kAllAtOnce,
                                   VerifyMode::kVerified);
    if (!r.ok()) state.SkipWithError("xpath failed");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_XPathAllAtOnce)->Arg(1000)->Arg(10000);

// Batched vs sequential multi-query execution: 16 concurrent //tag queries
// through LookupBatch share one BFS walk (the frontier descends wherever
// any point vanishes and every EvalRequest carries all points), vs 16
// independent pruned walks. Counters report server-side request counts per
// iteration — the round-trip budget a networked deployment cares about.
constexpr size_t kBatchQueries = 16;

std::vector<TagQuery> BatchQueries(const Deployment& d) {
  std::vector<std::string> tags = d.doc.DistinctTags();
  std::vector<TagQuery> queries;
  for (size_t i = 0; i < kBatchQueries; ++i)
    queries.push_back({tags[i % tags.size()], VerifyMode::kVerified});
  return queries;
}

void BM_Lookup16Sequential(benchmark::State& state) {
  Deployment& d = SharedDeployment(static_cast<size_t>(state.range(0)));
  TestSession<FpCyclotomicRing> session(&d.dep.client, &d.dep.server);
  const std::vector<TagQuery> queries = BatchQueries(d);
  const auto before = d.dep.server.stats();
  for (auto _ : state) {
    for (const TagQuery& q : queries) {
      auto r = session.Lookup(q.tag, q.mode);
      if (!r.ok()) state.SkipWithError("lookup failed");
      benchmark::DoNotOptimize(r);
    }
  }
  const auto after = d.dep.server.stats();
  state.counters["eval_requests"] = benchmark::Counter(
      static_cast<double>(after.eval_requests - before.eval_requests),
      benchmark::Counter::kAvgIterations);
  state.counters["server_evals"] = benchmark::Counter(
      static_cast<double>(after.evals - before.evals),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_Lookup16Sequential)->Arg(1000)->Arg(10000);

void BM_Lookup16Batched(benchmark::State& state) {
  Deployment& d = SharedDeployment(static_cast<size_t>(state.range(0)));
  TestSession<FpCyclotomicRing> session(&d.dep.client, &d.dep.server);
  const std::vector<TagQuery> queries = BatchQueries(d);
  const auto before = d.dep.server.stats();
  for (auto _ : state) {
    auto r = session.LookupBatch(queries);
    if (!r.ok()) state.SkipWithError("batch failed");
    benchmark::DoNotOptimize(r);
  }
  const auto after = d.dep.server.stats();
  state.counters["eval_requests"] = benchmark::Counter(
      static_cast<double>(after.eval_requests - before.eval_requests),
      benchmark::Counter::kAvgIterations);
  state.counters["server_evals"] = benchmark::Counter(
      static_cast<double>(after.evals - before.evals),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_Lookup16Batched)->Arg(1000)->Arg(10000);

void BM_MakeFpDeployment(benchmark::State& state) {
  XmlGeneratorOptions gen;
  gen.num_nodes = static_cast<size_t>(state.range(0));
  gen.tag_alphabet = 16;
  gen.seed = 5;
  XmlNode doc = GenerateXmlTree(gen);
  DeterministicPrf seed = DeterministicPrf::FromString("out-bench");
  for (auto _ : state) {
    auto dep = MakeFpDeployment(doc, seed);
    if (!dep.ok()) state.SkipWithError("outsource failed");
    benchmark::DoNotOptimize(dep);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MakeFpDeployment)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace polysse

BENCHMARK_MAIN();
