// E3/E4 — Figures 3 & 4: the share split in both rings. The paper's own
// random polynomials cannot be reproduced (its RNG is unspecified), so this
// binary prints OUR split under a fixed seed and checks the figures'
// defining invariant: client + server = original, node by node — e.g. the
// Fig. 4 root sums back to 265x + 45.
#include <cstdio>

#include "core/sharing.h"
#include "xml/xml_generator.h"

namespace {
const char* NodeLabel(size_t i) {
  static const char* kLabels[] = {"customers", "client", "name", "client",
                                  "name"};
  return kLabels[i];
}
}  // namespace

int main() {
  using namespace polysse;
  std::printf("=== E3+E4 / Figures 3 & 4: data sharing over client and "
              "server ===\n");
  std::printf("(fixed seed; the invariant client+server == original is what "
              "the figures demonstrate)\n\n");

  TagMap map = TagMap::FromExplicit(Fig1TagMapping()).value();
  XmlNode doc = MakeFig1Document();
  DeterministicPrf prf = DeterministicPrf::FromString("fig3-fig4-seed");
  bool all_ok = true;

  {
    std::printf("--- Fig. 3: shares in F_5[x]/(x^4 - 1) ---\n");
    std::printf("%-9s | %-22s | %-22s | %-22s\n", "node", "client part",
                "server part", "sum (= Fig. 2a)");
    FpCyclotomicRing ring = FpCyclotomicRing::Create(5).value();
    auto data = BuildPolyTree(ring, map, doc).value();
    auto shares = SplitShares(ring, data, prf);
    for (size_t i = 0; i < data.size(); ++i) {
      FpPoly sum = ring.Add(shares.client.nodes[i].poly,
                            shares.server.nodes[i].poly);
      bool ok = ring.Equal(sum, data.nodes[i].poly);
      all_ok &= ok;
      std::printf("%-9s | %-22s | %-22s | %-22s %s\n", NodeLabel(i),
                  ring.ToString(shares.client.nodes[i].poly).c_str(),
                  ring.ToString(shares.server.nodes[i].poly).c_str(),
                  ring.ToString(sum).c_str(), ok ? "OK" : "MISMATCH");
    }
  }
  {
    std::printf("\n--- Fig. 4: shares in Z[x]/(x^2 + 1) ---\n");
    std::printf("(client coefficients truncated to 48 bits for display)\n");
    ZQuotientRing ring = ZQuotientRing::Create(ZPoly({1, 0, 1})).value();
    auto data = BuildPolyTree(ring, map, doc).value();
    ShareSplitOptions opt;
    opt.z_coeff_bits = 48;  // small shares so the table stays readable
    auto shares = SplitShares(ring, data, prf, opt);
    for (size_t i = 0; i < data.size(); ++i) {
      ZPoly sum = ring.Add(shares.client.nodes[i].poly,
                           shares.server.nodes[i].poly);
      bool ok = ring.Equal(sum, data.nodes[i].poly);
      all_ok &= ok;
      std::printf("%-9s : client %-38s\n", NodeLabel(i),
                  shares.client.nodes[i].poly.ToString().c_str());
      std::printf("%-9s   server %-38s\n", "",
                  shares.server.nodes[i].poly.ToString().c_str());
      std::printf("%-9s   sum    %-38s %s\n", "", sum.ToString().c_str(),
                  ok ? "OK" : "MISMATCH");
    }
    std::printf("\npaper check: root sum should be 265x + 45 -> %s\n",
                ring.ToString(ring.Add(shares.client.nodes[0].poly,
                                       shares.server.nodes[0].poly))
                    .c_str());
  }

  std::printf("\nall share sums reproduce the originals: %s\n",
              all_ok ? "YES" : "NO");
  return all_ok ? 0 : 1;
}
