// Pipelined transport experiment: a 16-query verified lookup batch over a
// real loopback TCP link with 3 ms of injected per-request latency (the
// regime of a WAN hop), three client strategies:
//
//   sequential-rr : 16 separate Lookups, legacy request-response frames —
//                   the natural pre-pipelining baseline.
//   batched-rr    : one LookupBatch (shared frontier), still
//                   request-response frames, fetches after the walk.
//   pipelined     : one LookupBatch over tagged frames — next round's
//                   Evals overlap the previous rounds' in-flight Fetches.
//
//   pipelined_transport [--json PATH]
//
// All three must return bit-identical answers (checked against an
// in-process oracle; a mismatch is a hard failure). The deterministic
// counters (rounds, messages) go into the bench/baselines entry schema so
// CI can pin them at --threshold-pct 0; wall times are report-only.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "net/socket_endpoint.h"
#include "testing/deploy_helpers.h"
#include "testing/query_helpers.h"
#include "xml/xml_generator.h"

namespace polysse {
namespace {

using testing::FpDeployment;
using testing::MakeFpDeployment;
using testing::SortedMatchPaths;
using testing::TestSession;

constexpr int kQueries = 16;
constexpr int kLatencyMs = 3;

/// Wraps the share store and sleeps kLatencyMs before answering — the
/// stand-in for a 3 ms network RTT. Sleeps run on the server's worker
/// threads, so concurrent (pipelined) requests overlap their waits, exactly
/// as concurrent frames overlap propagation delay on a real link.
class DelayedHandler : public ServerHandler {
 public:
  explicit DelayedHandler(ServerHandler* inner) : inner_(inner) {}
  Result<EvalResponse> HandleEval(const EvalRequest& req) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(kLatencyMs));
    return inner_->HandleEval(req);
  }
  Result<FetchResponse> HandleFetch(const FetchRequest& req) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(kLatencyMs));
    return inner_->HandleFetch(req);
  }

 private:
  ServerHandler* inner_;
};

struct RunCost {
  double wall_us = 0;
  size_t rounds = 0;
  size_t fetch_rounds = 0;
  size_t messages_up = 0;
  std::vector<std::vector<std::string>> matches;  // per query, sorted paths
};

double MedianWallUs(std::vector<double> walls) {
  std::sort(walls.begin(), walls.end());
  return walls[walls.size() / 2];
}

int Run(const std::string& json_path) {
  XmlGeneratorOptions gen;
  gen.num_nodes = 300;
  gen.tag_alphabet = 9;
  gen.max_fanout = 4;
  gen.seed = 77;
  XmlNode doc = GenerateXmlTree(gen);
  DeterministicPrf seed = DeterministicPrf::FromString("pipe-bench");
  FpDeployment dep = MakeFpDeployment(doc, seed).value();
  DelayedHandler delayed(&dep.server);

  SocketServer::Options sopts;
  sopts.worker_threads = kQueries;  // latency overlaps, never queues
  auto server = SocketServer::Listen(&delayed, 0, sopts).value();

  // 16 queries cycling the document's distinct tags.
  const std::vector<std::string> all_tags = doc.DistinctTags();
  std::vector<std::string> tags;
  for (int q = 0; q < kQueries; ++q) tags.push_back(all_tags[q % all_tags.size()]);

  // Oracle answers (in-process, no latency).
  FpDeployment oracle_dep = MakeFpDeployment(doc, seed).value();
  TestSession<FpCyclotomicRing> oracle(&oracle_dep.client, &oracle_dep.server);
  std::vector<std::vector<std::string>> want;
  {
    auto o = oracle.LookupMany(tags, VerifyMode::kVerified).value();
    for (const auto& r : o.per_tag) want.push_back(SortedMatchPaths(r.matches));
  }

  // One measured strategy run: fresh endpoint + fresh session (no cache
  // carry-over), median wall of 3 after a warmup.
  auto measure = [&](bool pipeline, bool batched) -> RunCost {
    auto one = [&]() -> RunCost {
      SocketEndpoint::ConnectOptions copts;
      copts.pipeline = pipeline;
      auto ep =
          SocketEndpoint::Connect("127.0.0.1", server->port(), copts).value();
      RunCost cost;
      auto t0 = std::chrono::steady_clock::now();
      if (batched) {
        QuerySession<FpCyclotomicRing> session(
            &dep.client, EndpointGroup::TwoParty(ep.get()));
        auto r = session.LookupMany(tags, VerifyMode::kVerified).value();
        cost.rounds = r.stats.rounds;
        cost.fetch_rounds = r.stats.fetch_rounds;
        cost.messages_up = r.stats.transport.messages_up;
        for (const auto& per : r.per_tag)
          cost.matches.push_back(SortedMatchPaths(per.matches));
      } else {
        // Fresh session per query: each pays full price, like 16
        // independent request-response clients sharing one link.
        for (const std::string& tag : tags) {
          QuerySession<FpCyclotomicRing> session(
              &dep.client, EndpointGroup::TwoParty(ep.get()));
          auto r = session.Lookup(tag, VerifyMode::kVerified).value();
          cost.rounds += r.stats.rounds;
          cost.fetch_rounds += r.stats.fetch_rounds;
          cost.messages_up += r.stats.transport.messages_up;
          cost.matches.push_back(SortedMatchPaths(r.matches));
        }
      }
      cost.wall_us = std::chrono::duration<double, std::micro>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
      return cost;
    };
    one();  // warmup (dials the connection, touches the store)
    std::vector<double> walls;
    RunCost cost;
    for (int i = 0; i < 3; ++i) {
      cost = one();
      walls.push_back(cost.wall_us);
    }
    cost.wall_us = MedianWallUs(walls);
    return cost;
  };

  const RunCost seq = measure(/*pipeline=*/false, /*batched=*/false);
  const RunCost rr = measure(/*pipeline=*/false, /*batched=*/true);
  const RunCost piped = measure(/*pipeline=*/true, /*batched=*/true);

  // Bit-identical or bust.
  for (const RunCost* c : {&seq, &rr, &piped}) {
    if (c->matches != want) {
      std::fprintf(stderr, "ANSWER MISMATCH against in-process oracle\n");
      return 1;
    }
  }

  std::printf(
      "%d-query verified lookup batch, loopback TCP + %d ms injected "
      "per-request latency, %d server workers.\n\n",
      kQueries, kLatencyMs, kQueries);
  std::printf("%-14s | %8s | %6s | %6s | %8s | %8s\n", "strategy", "wall ms",
              "rounds", "fetchR", "msgs up", "speedup");
  auto row = [&](const char* name, const RunCost& c) {
    std::printf("%-14s | %8.1f | %6zu | %6zu | %8zu | %7.2fx\n", name,
                c.wall_us / 1000.0, c.rounds, c.fetch_rounds, c.messages_up,
                seq.wall_us / c.wall_us);
  };
  row("sequential-rr", seq);
  row("batched-rr", rr);
  row("pipelined", piped);
  std::printf(
      "\nshape check: each sequential-rr message pays the full %d ms in "
      "series; the shared frontier collapses the message count, and tagged "
      "frames then overlap each round's fetches with the walk. The "
      "acceptance bar is pipelined >= 2x over sequential-rr; typical runs "
      "land near the message-count ratio (%.0fx).\n",
      kLatencyMs, double(seq.messages_up) / double(piped.messages_up));

  const double speedup = seq.wall_us / piped.wall_us;
  if (speedup < 2.0) {
    std::fprintf(stderr, "FAIL: pipelined speedup %.2fx < 2x floor\n", speedup);
    return 1;
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\n  \"bench\": \"pipelined_transport\",\n  \"entries\": {\n"
        "    \"sequential_rr_rounds\": %.1f,\n"
        "    \"sequential_rr_messages\": %.1f,\n"
        "    \"batched_rr_rounds\": %.1f,\n"
        "    \"batched_rr_fetch_rounds\": %.1f,\n"
        "    \"batched_rr_messages\": %.1f,\n"
        "    \"pipelined_rounds\": %.1f,\n"
        "    \"pipelined_fetch_rounds\": %.1f,\n"
        "    \"pipelined_messages\": %.1f,\n"
        "    \"sequential_rr_wall_us\": %.1f,\n"
        "    \"batched_rr_wall_us\": %.1f,\n"
        "    \"pipelined_wall_us\": %.1f,\n"
        "    \"pipelined_speedup_x100\": %.1f\n"
        "  }\n}\n",
        double(seq.rounds), double(seq.messages_up), double(rr.rounds),
        double(rr.fetch_rounds), double(rr.messages_up), double(piped.rounds),
        double(piped.fetch_rounds), double(piped.messages_up), seq.wall_us,
        rr.wall_us, piped.wall_us, speedup * 100.0);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace polysse

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") json_path = argv[i + 1];
  }
  return polysse::Run(json_path);
}
