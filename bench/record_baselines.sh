#!/usr/bin/env bash
# Records the in-repo perf baselines under bench/baselines/: ring_ops and
# query_scaling from their google-benchmark JSON output, fig2_reduction as
# median wall time of three runs. Run from the repo root on an otherwise
# idle machine; see BENCH.md for the methodology and when to re-record.
#
# Usage: bench/record_baselines.sh [BUILD_DIR]   (default: build-release)
set -euo pipefail

BUILD_DIR="${1:-build-release}"
OUT_DIR="$(dirname "$0")/baselines"
MIN_TIME="${POLYSSE_BENCH_MIN_TIME:-0.1}"

if [ ! -d "$BUILD_DIR" ]; then
  cmake --preset release
fi
cmake --build "$BUILD_DIR" --target bench -j"$(nproc)"
mkdir -p "$OUT_DIR"

record_gbench() {  # $1 = binary stem
  local stem="$1"
  local raw="/tmp/polysse_${stem}_baseline.json"
  echo "=== recording ${stem} (min_time=${MIN_TIME}s per benchmark) ==="
  "${BUILD_DIR}/bench/${stem}" --benchmark_min_time="${MIN_TIME}" \
    --benchmark_format=json >"$raw"
  python3 - "$stem" "$raw" "${OUT_DIR}/${stem}.json" <<'EOF'
import datetime, json, os, platform, sys
stem, raw_path, out_path = sys.argv[1:4]
raw = json.load(open(raw_path))
scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
entries = {}
for b in raw["benchmarks"]:
    if b.get("run_type") == "aggregate":
        continue
    entries[b["name"]] = round(b["real_time"] * scale[b["time_unit"]], 1)
doc = {
    "bench": stem,
    "recorded": datetime.date.today().isoformat(),
    "host": {"machine": platform.machine(), "system": platform.system(),
             "cpus": os.cpu_count()},
    "entries": entries,
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path} ({len(entries)} entries)")
EOF
}

record_wall() {  # $1 = binary stem, timed end-to-end, median of 3
  local stem="$1"
  echo "=== recording ${stem} (median wall time of 3 runs) ==="
  python3 - "$stem" "${BUILD_DIR}/bench/${stem}" "${OUT_DIR}/${stem}.json" <<'EOF'
import datetime, json, os, platform, subprocess, sys, time
stem, binary, out_path = sys.argv[1:4]
runs = []
for _ in range(3):
    t0 = time.monotonic()
    subprocess.run([binary], check=True, stdout=subprocess.DEVNULL)
    runs.append(round((time.monotonic() - t0) * 1e6, 1))  # us
runs.sort()
doc = {
    "bench": stem,
    "recorded": datetime.date.today().isoformat(),
    "host": {"machine": platform.machine(), "system": platform.system(),
             "cpus": os.cpu_count()},
    "entries": {f"{stem}_wall_us": runs[len(runs) // 2]},
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path} (median of {runs})")
EOF
}

record_self_json() {  # $1 = binary stem emitting baseline-schema JSON via --json
  local stem="$1"
  local raw="/tmp/polysse_${stem}_baseline.json"
  echo "=== recording ${stem} (self-reported entries) ==="
  "${BUILD_DIR}/bench/${stem}" --json "$raw"
  python3 - "$stem" "$raw" "${OUT_DIR}/${stem}.json" <<'EOF'
import datetime, json, os, platform, sys
stem, raw_path, out_path = sys.argv[1:4]
raw = json.load(open(raw_path))
doc = {
    "bench": stem,
    "recorded": datetime.date.today().isoformat(),
    "host": {"machine": platform.machine(), "system": platform.system(),
             "cpus": os.cpu_count()},
    "entries": raw["entries"],
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path} ({len(raw['entries'])} entries)")
EOF
}

record_gbench ring_ops
record_gbench query_scaling
record_wall fig2_reduction
record_self_json collection_scaling
record_self_json pipelined_transport
record_self_json shard_scaling

echo "baselines recorded under ${OUT_DIR}/"
