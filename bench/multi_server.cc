// E12 — the §4.2 multi-server extension: additive client+k-server splits
// and Shamir t-of-n sharing. Reports setup cost, per-eval cost, and the
// seed-only client's share re-derivation cost (the thin-client trade-off).
#include <chrono>
#include <cstdio>

#include "core/engine.h"
#include "core/multi_server.h"
#include "core/outsource.h"
#include "core/sharing.h"
#include "xml/xml_generator.h"

namespace {
double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}
}  // namespace

int main() {
  using namespace polysse;
  std::printf("=== E12 / multi-server extension (§4.2) ===\n\n");
  DeterministicPrf seed = DeterministicPrf::FromString("ms-bench");

  XmlGeneratorOptions gen;
  gen.num_nodes = 500;
  gen.tag_alphabet = 12;
  gen.seed = 33;
  XmlNode doc = GenerateXmlTree(gen);
  FpCyclotomicRing ring = FpCyclotomicRing::Create(101).value();
  TagMap::Options mopt;
  mopt.max_value = ring.MaxTagValue();
  TagMap map = TagMap::Build(doc.DistinctTags(), mopt, seed).value();
  PolyTree<FpCyclotomicRing> data = BuildPolyTree(ring, map, doc).value();
  const uint64_t e = map.Value(doc.DistinctTags()[1]).value();

  std::printf("--- additive client + k servers ---\n");
  std::printf("%3s | %10s | %12s | %10s\n", "k", "setup ms", "store B/srv",
              "eval ms");
  for (int k : {1, 2, 3, 5, 7}) {
    auto t0 = std::chrono::steady_clock::now();
    auto servers = SplitSharesAcrossServers(ring, data, seed, k).value();
    double setup = MsSince(t0);
    size_t store_bytes = 0;
    for (const auto& node : servers[0].nodes)
      store_bytes += ring.SerializedSize(node.poly);

    auto t1 = std::chrono::steady_clock::now();
    size_t checks = 0;
    for (size_t i = 0; i < data.size(); i += 7) {
      std::vector<uint64_t> evals;
      for (int s = 0; s < k; ++s)
        evals.push_back(ring.EvalAt(servers[s].nodes[i].poly, e).value());
      uint64_t cv =
          ring.EvalAt(DeriveClientShare(ring, seed, data.nodes[i].path, {}), e)
              .value();
      uint64_t combined = CombineAdditiveEvals(ring.p(), cv, evals);
      if (combined != ring.EvalAt(data.nodes[i].poly, e).value()) {
        std::printf("MISMATCH at node %zu\n", i);
        return 1;
      }
      ++checks;
    }
    std::printf("%3d | %10.2f | %12zu | %10.3f  (%zu nodes checked)\n", k,
                setup, store_bytes, MsSince(t1), checks);
  }

  std::printf("\n--- Shamir t-of-n (client holds nothing but the tag map) ---\n");
  std::printf("%6s | %10s | %10s\n", "t/n", "setup ms", "eval ms");
  for (auto [t, n] : std::vector<std::pair<int, int>>{{2, 3}, {3, 5}, {5, 7}}) {
    ChaChaRng rng = ChaChaRng::FromString("msr" + std::to_string(t));
    auto t0 = std::chrono::steady_clock::now();
    auto ms = ShamirMultiServer::Setup(ring, data, t, n, rng);
    double setup = MsSince(t0);
    if (!ms.ok()) continue;
    auto t1 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < data.size(); i += 7) {
      if (ms->Eval(static_cast<int>(i), e).value() !=
          ring.EvalAt(data.nodes[i].poly, e).value()) {
        std::printf("MISMATCH\n");
        return 1;
      }
    }
    std::printf("%3d/%-3d| %10.2f | %10.3f\n", t, n, setup, MsSince(t1));
  }
  std::printf("\nshape check: additive setup is linear in k; Shamir setup "
              "pays t-degree sharing per coefficient but any t of n servers "
              "suffice (availability), and t-1 learn nothing.\n");

  // --- parallel fan-out: the point of the thread-pooled executor. Every
  // endpoint sleeps L per call (FaultInjectingEndpoint latency); sequential
  // dispatch pays ~k*L per round, the pooled executor ~L, so a whole
  // verified lookup (several rounds + fetches) shrinks by ~k.
  std::printf("\n--- parallel fan-out: k latency-L servers, one verified "
              "lookup ---\n");
  std::printf("%3s | %6s | %10s | %10s | %7s\n", "k", "L ms", "seq ms",
              "pooled ms", "speedup");
  const std::string fanout_tag = doc.DistinctTags()[1];
  for (int k : {2, 4, 8}) {
    const uint32_t latency_us = 3000;
    auto timed_lookup = [&](int workers) {
      FpEngine::Deploy deploy;
      deploy.scheme = ShareScheme::kAdditive;
      deploy.num_servers = k;
      deploy.worker_threads = workers;
      auto engine = FpEngine::Outsource(doc, seed, deploy).value();
      FaultConfig lag;
      lag.latency_us = latency_us;
      for (int s = 0; s < k; ++s) engine->InjectFaults(s, lag);
      auto t0 = std::chrono::steady_clock::now();
      auto r = engine->Lookup(fanout_tag, VerifyMode::kVerified);
      if (!r.ok()) {
        std::printf("lookup failed: %s\n", r.status().ToString().c_str());
        return -1.0;
      }
      return MsSince(t0);
    };
    const double seq_ms = timed_lookup(0);
    const double pooled_ms = timed_lookup(k);
    std::printf("%3d | %6.1f | %10.1f | %10.1f | %6.2fx\n", k,
                latency_us / 1000.0, seq_ms, pooled_ms, seq_ms / pooled_ms);
  }
  std::printf("\nshape check: pooled wall time tracks ONE server's latency "
              "per round (~L), sequential tracks the sum (~k*L); the "
              "speedup approaches k as L dominates compute.\n");
  return 0;
}
