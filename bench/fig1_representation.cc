// E1 — Figure 1: the XML example, the tag mapping, and the non-reduced
// representation as a tree of polynomials over plain Z[x].
//
// Expected output (paper): customers = (x - 3)((x - 2)(x - 4))^2, each
// client = (x - 2)(x - 4), each name = (x - 4).
#include <cstdio>

#include "core/poly_tree.h"
#include "xml/xml_generator.h"
#include "xml/xml_writer.h"

int main() {
  using namespace polysse;

  std::printf("=== E1 / Figure 1: XML example and its non-reduced "
              "polynomial tree ===\n\n");

  XmlNode doc = MakeFig1Document();
  std::printf("--- Fig. 1(a): XML example ---\n%s\n",
              WriteXml(doc).c_str());

  std::printf("--- Fig. 1(b): mapping from tagname to numbers ---\n");
  TagMap map = TagMap::FromExplicit(Fig1TagMapping()).value();
  for (const auto& [tag, value] : map.Entries()) {
    std::printf("  map(%-9s) = %llu\n", tag.c_str(),
                static_cast<unsigned long long>(value));
  }

  std::printf("\n--- Fig. 1(c): non-reduced representation (Z[x]) ---\n");
  UnreducedPolyTree tree = BuildUnreducedPolyTree(map, doc).value();
  const char* indent[] = {"", "  ", "    "};
  for (const auto& node : tree.nodes) {
    int depth = 0;
    for (char c : node.path) depth += c == '/';
    if (!node.path.empty()) ++depth;
    std::printf("%s%-9s : %s\n", indent[depth],
                map.Tag(node.tag_value).value().c_str(),
                node.poly.ToString().c_str());
  }

  ZPoly client_factor = ZPoly::XMinus(BigInt(2)) * ZPoly::XMinus(BigInt(4));
  ZPoly expected_root =
      ZPoly::XMinus(BigInt(3)) * client_factor * client_factor;
  std::printf("\npaper check: customers = (x-3)((x-2)(x-4))^2 expands to %s\n",
              expected_root.ToString().c_str());
  bool match = tree.nodes[0].poly == expected_root;
  std::printf("root matches the paper's formula: %s\n", match ? "YES" : "NO");
  return match ? 0 : 1;
}
