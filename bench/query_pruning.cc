// E8 — the efficiency claim of §4.3/§5: "a branch can be marked as a
// dead-end in a very early stage. Thus, only a small portion of the tree
// has to be examined."
//
// Sweeps tree size, fan-out and tag selectivity; reports the fraction of
// the server tree actually visited vs a full traversal, plus answer
// correctness against the plaintext oracle, plus the Z-ring evaluation-
// filter false-positive rate with unsafe vs safe tag mappings.
#include <cstdio>

#include "baseline/plaintext_search.h"
#include "core/outsource.h"
#include "core/query_session.h"
#include "testing/deploy_helpers.h"
#include "xml/xml_generator.h"

int main() {
  using namespace polysse;
  using namespace polysse::testing;
  std::printf("=== E8 / query pruning: visited fraction and correctness ===\n\n");
  DeterministicPrf seed = DeterministicPrf::FromString("pruning-bench");

  std::printf("%6s %7s %9s | %8s %8s %10s %8s | %7s\n", "nodes", "fanout",
              "alphabet", "tag", "matches", "visited", "fraction", "correct");
  for (size_t n : {100u, 1000u, 10000u, 50000u}) {
    for (int fanout : {2, 8}) {
      XmlGeneratorOptions gen;
      gen.num_nodes = n;
      gen.max_fanout = fanout;
      gen.tag_alphabet = 16;
      gen.zipf_s = 1.2;  // realistic skew: some tags rare, some everywhere
      gen.seed = n + fanout;
      XmlNode doc = GenerateXmlTree(gen);
      auto dep = MakeFpDeployment(doc, seed);
      if (!dep.ok()) continue;
      TestSession<FpCyclotomicRing> session(&dep->client, &dep->server);

      // Query the most common and the rarest tag present.
      std::vector<std::string> tags = doc.DistinctTags();
      for (const std::string& tag : {tags.front(), tags.back()}) {
        auto r = session.Lookup(tag, VerifyMode::kOptimistic);
        if (!r.ok()) continue;
        auto oracle = PlaintextLookup(doc, tag);
        // Optimistic matches+possible must cover the oracle set.
        size_t covered = r->matches.size() + r->possible.size();
        bool correct = covered >= oracle.match_paths.size();
        std::printf("%6zu %7d %9zu | %8s %8zu %10zu %8.3f | %7s\n", n,
                    fanout, tags.size(), tag.c_str(),
                    oracle.match_paths.size(), r->stats.nodes_visited,
                    r->stats.VisitedFraction(), correct ? "yes" : "NO");
      }
    }
  }

  // Ablation (DESIGN.md §5): pruning ON vs OFF. "Off" evaluates the whole
  // shared tree in one request — what a server without the smart index
  // would have to do for every query.
  std::printf("\n--- ablation: pruned walk vs exhaustive evaluation ---\n");
  std::printf("%7s %10s | %12s %12s | %12s %12s\n", "nodes", "tag",
              "pruned:evals", "pruned:B_dn", "exhaust:evals", "exhaust:B_dn");
  for (size_t n : {1000u, 10000u}) {
    XmlGeneratorOptions gen;
    gen.num_nodes = n;
    gen.tag_alphabet = 16;
    gen.zipf_s = 1.2;
    gen.seed = n + 1;
    XmlNode doc = GenerateXmlTree(gen);
    auto dep = MakeFpDeployment(doc, seed);
    if (!dep.ok()) continue;
    TestSession<FpCyclotomicRing> session(&dep->client, &dep->server);
    const std::string tag = doc.DistinctTags().back();
    auto e = dep->client.tag_map().Value(tag);
    if (!e.ok()) continue;

    auto pruned = session.Lookup(tag, VerifyMode::kOptimistic);
    if (!pruned.ok()) continue;

    // Exhaustive: one request naming every node (no dead-branch cutoff).
    dep->server.ResetStats();
    EvalRequest all;
    all.points = {*e};
    for (size_t i = 0; i < dep->server.size(); ++i)
      all.node_ids.push_back(static_cast<int32_t>(i));
    ByteWriter up;
    all.Serialize(&up);
    auto resp = dep->server.HandleEval(all);
    size_t exhaust_bytes = 0;
    if (resp.ok()) {
      ByteWriter down;
      resp->Serialize(&down);
      exhaust_bytes = down.size();
    }
    std::printf("%7zu %10s | %12zu %12zu | %12zu %12zu\n", n, tag.c_str(),
                pruned->stats.server_evals,
                pruned->stats.transport.bytes_down,
                dep->server.stats().evals, exhaust_bytes);
  }

  std::printf("\n--- Z-ring evaluation-filter false positives "
              "(unsafe vs safe tag values) ---\n");
  // Unsafe: sequential values 1..k (r(e)-divisibility collisions possible).
  // Safe: ZQuotientRing::SafeTagValues.
  XmlGeneratorOptions gen;
  gen.num_nodes = 400;
  gen.tag_alphabet = 12;
  gen.seed = 77;
  XmlNode doc = GenerateXmlTree(gen);
  ZQuotientRing ring = ZQuotientRing::Create(ZPoly({1, 0, 1})).value();

  auto run_mapping = [&](const TagMap& map, const char* label) {
    PolyTree<ZQuotientRing> data = BuildPolyTree(ring, map, doc).value();
    SharedTrees<ZQuotientRing> shares = SplitShares(ring, data, seed);
    ServerStore<ZQuotientRing> server(ring, std::move(shares.server));
    auto client = ClientContext<ZQuotientRing>::SeedOnly(ring, map, seed);
    TestSession<ZQuotientRing> session(&client, &server);
    size_t total_fp = 0, total_matches = 0;
    for (const std::string& tag : doc.DistinctTags()) {
      auto r = session.Lookup(tag, VerifyMode::kVerified);
      if (!r.ok()) continue;
      total_fp += r->stats.false_positives_removed;
      total_matches += r->matches.size();
    }
    std::printf("%-24s: %zu verified matches, %zu filter false positives "
                "removed by Theorem-2 reconstruction\n",
                label, total_matches, total_fp);
  };

  {
    std::vector<std::pair<std::string, uint64_t>> pairs;
    uint64_t v = 1;
    for (const std::string& t : doc.DistinctTags()) pairs.push_back({t, v++});
    run_mapping(TagMap::FromExplicit(pairs).value(), "unsafe sequential 1..k");
  }
  {
    TagMap::Options opt;
    opt.allowed_values = ring.SafeTagValues(4096, 4096);
    run_mapping(TagMap::Build(doc.DistinctTags(), opt, seed).value(),
                "safe (r(t) prime, large)");
  }
  std::printf("\nshape check (paper): visited fraction << 1 for rare tags "
              "and shrinks with document size.\n");
  return 0;
}
