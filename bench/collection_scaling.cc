// Cross-document query scaling — the collection redesign's headline claim:
// searching a D-document collection is ONE shared-frontier walk (per round
// a single EvalRequest per server covers every document), not D sequential
// per-document walks. This driver measures both strategies over the same
// live deployment at D in {1, 16, 128} and reports BFS rounds, wire
// messages, and wall time.
//
//   collection_scaling [--json PATH]
//
// With --json it also writes the numbers in the bench/baselines entry
// schema (compare_baselines.py consumes either side).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/collection.h"
#include "xml/xml_generator.h"

namespace polysse {
namespace {

constexpr size_t kDocNodes = 40;
constexpr size_t kTagAlphabet = 8;
const char* kQueryTag = "tag0";

XmlNode MakeDoc(uint64_t seed) {
  XmlGeneratorOptions gen;
  gen.num_nodes = kDocNodes;
  gen.tag_alphabet = kTagAlphabet;
  gen.max_fanout = 4;
  gen.seed = seed;
  return GenerateXmlTree(gen);
}

double MedianWallUs(const std::vector<double>& runs_in) {
  std::vector<double> runs = runs_in;
  std::sort(runs.begin(), runs.end());
  return runs[runs.size() / 2];
}

struct Cost {
  size_t rounds = 0;
  size_t fetch_rounds = 0;
  size_t messages_up = 0;
  size_t bytes_up = 0;
  double wall_us = 0;
};

template <typename Fn>
Cost Measure(Fn&& run) {
  // One warm-up (session caches are per-query, but allocators warm), then
  // median wall of three timed runs; counters from the last run.
  run();
  std::vector<double> walls;
  Cost cost;
  for (int i = 0; i < 3; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    Cost c = run();
    auto t1 = std::chrono::steady_clock::now();
    walls.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
    cost = c;
  }
  cost.wall_us = MedianWallUs(walls);
  return cost;
}

int Run(const std::string& json_path) {
  std::string json_entries;
  auto add_entry = [&](const std::string& name, double value) {
    if (!json_entries.empty()) json_entries += ",\n";
    char buf[160];
    std::snprintf(buf, sizeof buf, "    \"%s\": %.1f", name.c_str(), value);
    json_entries += buf;
  };

  std::printf(
      "cross-document //%s, %zu-node docs, 2-party loopback.\n"
      "'walk' = optimistic mode (the pruned index walk itself); 'verified'\n"
      "adds the per-candidate reconstruction fetches, which cost the same\n"
      "under either strategy. 'wall @200us/msg' re-runs the walk with 200us\n"
      "injected per-message latency — the regime a real network lives in.\n\n",
      kQueryTag, kDocNodes);
  std::printf("%6s | %13s %13s | %13s %13s | %17s\n", "", "walk rounds",
              "walk msgs", "verified msgs", "verified wall",
              "walk wall @200us/msg");
  std::printf("%6s | %6s %6s  %6s %6s | %6s %6s  %6s %6s | %8s %8s\n", "docs",
              "shared", "seq", "shared", "seq", "shared", "seq", "ms", "ms",
              "shared ms", "seq ms");

  for (size_t docs : {1u, 16u, 128u}) {
    DeterministicPrf seed = DeterministicPrf::FromString("col-scaling");
    auto col = FpCollection::Create(seed).value();
    for (size_t d = 0; d < docs; ++d) {
      Status s = col->Add(static_cast<DocId>(d), MakeDoc(1000 + d));
      if (!s.ok()) {
        std::fprintf(stderr, "add failed: %s\n", s.ToString().c_str());
        return 1;
      }
    }

    auto shared_cost = [&](VerifyMode mode) {
      return Measure([&, mode]() -> Cost {
        auto r = col->Search(kQueryTag, mode).value();
        return {r.stats.rounds, r.stats.fetch_rounds,
                r.stats.transport.messages_up, r.stats.transport.bytes_up, 0};
      });
    };
    auto sequential_cost = [&](VerifyMode mode) {
      return Measure([&, mode]() -> Cost {
        Cost sum;
        for (size_t d = 0; d < docs; ++d) {
          auto r =
              col->SearchDoc(static_cast<DocId>(d), kQueryTag, mode).value();
          sum.rounds += r.stats.rounds;
          sum.fetch_rounds += r.stats.fetch_rounds;
          sum.messages_up += r.stats.transport.messages_up;
          sum.bytes_up += r.stats.transport.bytes_up;
        }
        return sum;
      });
    };

    const Cost shared_walk = shared_cost(VerifyMode::kOptimistic);
    const Cost seq_walk = sequential_cost(VerifyMode::kOptimistic);
    const Cost shared_ver = shared_cost(VerifyMode::kVerified);
    const Cost seq_ver = sequential_cost(VerifyMode::kVerified);
    const Cost shared_trusted = shared_cost(VerifyMode::kTrustedConstOnly);

    // Hot-query cache: an identical repeat is answered from client memory;
    // count the wire messages it still sends (the headline: zero).
    col->SetQueryCacheCapacity(4);
    (void)col->Search(kQueryTag, VerifyMode::kVerified).value();  // fill
    const TransportCounters cache_before = col->transport_totals();
    (void)col->Search(kQueryTag, VerifyMode::kVerified).value();  // hit
    const size_t cached_repeat_msgs =
        col->transport_totals().messages_up - cache_before.messages_up;
    col->SetQueryCacheCapacity(0);

    // The same walk against a server 200us of latency away: round trips
    // are now the cost, and the shared frontier pays D-fold fewer.
    FaultConfig lag;
    lag.latency_us = 200;
    col->InjectFaults(0, lag);
    const Cost shared_lag = shared_cost(VerifyMode::kOptimistic);
    const Cost seq_lag = sequential_cost(VerifyMode::kOptimistic);

    std::printf("%6zu | %6zu %6zu  %6zu %6zu | %6zu %6zu  %6.1f %6.1f | %8.1f %8.1f\n",
                docs, shared_walk.rounds, seq_walk.rounds,
                shared_walk.messages_up, seq_walk.messages_up,
                shared_ver.messages_up, seq_ver.messages_up,
                shared_ver.wall_us / 1000.0, seq_ver.wall_us / 1000.0,
                shared_lag.wall_us / 1000.0, seq_lag.wall_us / 1000.0);
    std::printf(
        "       | verified fetch rounds: shared %zu, sequential %zu; "
        "verified KB up: shared %.1f, seq %.1f; trusted msgs %zu; "
        "cached repeat msgs %zu\n",
        shared_ver.fetch_rounds, seq_ver.fetch_rounds,
        shared_ver.bytes_up / 1024.0, seq_ver.bytes_up / 1024.0,
        shared_trusted.messages_up, cached_repeat_msgs);

    const std::string suffix = "_D" + std::to_string(docs);
    add_entry("shared_walk_rounds" + suffix,
              static_cast<double>(shared_walk.rounds));
    add_entry("sequential_walk_rounds" + suffix,
              static_cast<double>(seq_walk.rounds));
    add_entry("shared_walk_messages" + suffix,
              static_cast<double>(shared_walk.messages_up));
    add_entry("sequential_walk_messages" + suffix,
              static_cast<double>(seq_walk.messages_up));
    add_entry("shared_verified_messages" + suffix,
              static_cast<double>(shared_ver.messages_up));
    add_entry("sequential_verified_messages" + suffix,
              static_cast<double>(seq_ver.messages_up));
    add_entry("shared_verified_fetch_rounds" + suffix,
              static_cast<double>(shared_ver.fetch_rounds));
    add_entry("sequential_verified_fetch_rounds" + suffix,
              static_cast<double>(seq_ver.fetch_rounds));
    add_entry("shared_verified_bytes_up" + suffix,
              static_cast<double>(shared_ver.bytes_up));
    add_entry("shared_trusted_messages" + suffix,
              static_cast<double>(shared_trusted.messages_up));
    add_entry("cached_repeat_messages" + suffix,
              static_cast<double>(cached_repeat_msgs));
    add_entry("shared_lag_wall_us" + suffix, shared_lag.wall_us);
    add_entry("sequential_lag_wall_us" + suffix, seq_lag.wall_us);
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"collection_scaling\",\n  \"entries\": {\n%s\n  }\n}\n",
                 json_entries.c_str());
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace polysse

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") json_path = argv[i + 1];
  }
  return polysse::Run(json_path);
}
