// E9 — §4.3 "Advanced Querying": left-to-right stepping vs the paper's
// all-at-once strategy ("it is more efficient to evaluate the whole query
// at once ... elements are filtered out in a very early stage").
//
// Documents contain a few planted //a/b//c/d paths amid decoy subtrees that
// match early steps but never the whole query — exactly the case where
// all-at-once pruning pays off.
#include <cstdio>

#include "core/outsource.h"
#include "core/query_session.h"
#include "testing/deploy_helpers.h"
#include "xml/xml_generator.h"

namespace {

using namespace polysse;
using namespace polysse::testing;

// Builds a document with `planted` full a/b/c/d chains and `decoys`
// subtrees that contain a and b but never c or d.
XmlNode BuildPlantedDocument(int planted, int decoys, int filler_depth) {
  XmlNode root("root");
  for (int i = 0; i < planted; ++i) {
    XmlNode a("a");
    XmlNode b("b");
    XmlNode* cur = &b;
    for (int d = 0; d < filler_depth; ++d) cur = &cur->AddChild("filler");
    XmlNode c("c");
    c.AddChild("d");
    cur->AddChild(std::move(c));
    a.AddChild(std::move(b));
    root.AddChild(std::move(a));
  }
  for (int i = 0; i < decoys; ++i) {
    XmlNode a("a");
    XmlNode b("b");
    XmlNode* cur = &b;
    for (int d = 0; d < filler_depth + 4; ++d) cur = &cur->AddChild("filler");
    cur->AddChild("e");  // dead end: no c/d below
    a.AddChild(std::move(b));
    root.AddChild(std::move(a));
  }
  return root;
}

}  // namespace

int main() {
  std::printf("=== E9 / advanced querying: left-to-right vs all-at-once ===\n\n");
  DeterministicPrf seed = DeterministicPrf::FromString("xpath-bench");

  std::printf("%8s %7s | %8s | %10s %10s %12s | %10s %10s %12s | %8s\n",
              "planted", "decoys", "matches", "l2r:visit", "l2r:evals",
              "l2r:bytes_dn", "aao:visit", "aao:evals", "aao:bytes_dn",
              "agree");
  for (int decoys : {4, 16, 64, 256}) {
    XmlNode doc = BuildPlantedDocument(/*planted=*/3, decoys,
                                       /*filler_depth=*/6);
    auto dep = MakeFpDeployment(doc, seed);
    if (!dep.ok()) continue;
    TestSession<FpCyclotomicRing> session(&dep->client, &dep->server);
    auto query = XPathQuery::Parse("//a/b//c/d").value();

    auto l2r = session.EvaluateXPath(query, XPathStrategy::kLeftToRight,
                                     VerifyMode::kVerified);
    auto aao = session.EvaluateXPath(query, XPathStrategy::kAllAtOnce,
                                     VerifyMode::kVerified);
    if (!l2r.ok() || !aao.ok()) continue;
    std::printf("%8d %7d | %8zu | %10zu %10zu %12zu | %10zu %10zu %12zu | %8s\n",
                3, decoys, aao->matches.size(), l2r->stats.nodes_visited,
                l2r->stats.server_evals, l2r->stats.transport.bytes_down,
                aao->stats.nodes_visited, aao->stats.server_evals,
                aao->stats.transport.bytes_down,
                l2r->matches.size() == aao->matches.size() ? "yes" : "NO");
  }

  std::printf("\nrandom-document sanity (strategies must agree on arbitrary "
              "shapes):\n");
  for (uint64_t s : {1ull, 2ull, 3ull}) {
    XmlGeneratorOptions gen;
    gen.num_nodes = 600;
    gen.tag_alphabet = 10;
    gen.seed = s;
    XmlNode doc = GenerateXmlTree(gen);
    auto dep = MakeFpDeployment(doc, seed);
    if (!dep.ok()) continue;
    TestSession<FpCyclotomicRing> session(&dep->client, &dep->server);
    auto tags = doc.DistinctTags();
    std::string q = "//" + tags[0] + "//" + tags[1 % tags.size()];
    auto query = XPathQuery::Parse(q).value();
    auto l2r = session.EvaluateXPath(query, XPathStrategy::kLeftToRight,
                                     VerifyMode::kVerified);
    auto aao = session.EvaluateXPath(query, XPathStrategy::kAllAtOnce,
                                     VerifyMode::kVerified);
    if (!l2r.ok() || !aao.ok()) continue;
    std::printf("  seed %llu, %-24s: l2r %zu matches (%zu visited), aao %zu "
                "matches (%zu visited)\n",
                static_cast<unsigned long long>(s), q.c_str(),
                l2r->matches.size(), l2r->stats.nodes_visited,
                aao->matches.size(), aao->stats.nodes_visited);
  }
  std::printf("\nshape check (paper): all-at-once visits no more nodes than "
              "left-to-right, and prunes decoy branches early.\n");
  return 0;
}
