// E5/E6 — Figures 5 & 6: the query 'x = 2' (i.e. //client) evaluated over
// the shared trees. Prints the client / server / sum evaluation trees; the
// paper's sum tree is {customers: 0, client: 0, name: 3} in both rings
// (Fig. 6 computes mod r(2) = 5).
#include <cstdio>
#include <vector>

#include "core/client_context.h"
#include "core/query_session.h"
#include "testing/deploy_helpers.h"
#include "core/sharing.h"
#include "xml/xml_generator.h"

namespace {
const char* NodeLabel(size_t i) {
  static const char* kLabels[] = {"customers", "client", "name", "client",
                                  "name"};
  return kLabels[i];
}
}  // namespace

int main() {
  using namespace polysse;
  std::printf("=== E5+E6 / Figures 5 & 6: query 'x = 2' (//client) ===\n\n");

  TagMap map = TagMap::FromExplicit(Fig1TagMapping()).value();
  XmlNode doc = MakeFig1Document();
  DeterministicPrf prf = DeterministicPrf::FromString("fig5-fig6-seed");
  const uint64_t e = 2;  // map(client)
  bool all_ok = true;

  // Expected sum tree from the paper (preorder).
  const uint64_t kExpectedSum[] = {0, 0, 3, 0, 3};

  auto run = [&](auto ring, const char* title) {
    using Ring = decltype(ring);
    std::printf("--- %s ---\n", title);
    auto data = BuildPolyTree(ring, map, doc).value();
    auto shares = SplitShares(ring, data, prf);
    uint64_t m = ring.QueryModulus(e).value();
    std::printf("arithmetic mod %llu\n", static_cast<unsigned long long>(m));
    std::printf("%-9s | %7s %7s %5s | paper\n", "node", "client", "server",
                "sum");
    for (size_t i = 0; i < data.size(); ++i) {
      uint64_t cv = ring.EvalAt(shares.client.nodes[i].poly, e).value();
      uint64_t sv = ring.EvalAt(shares.server.nodes[i].poly, e).value();
      uint64_t sum = (cv + sv) % m;
      bool ok = sum == kExpectedSum[i];
      all_ok &= ok;
      std::printf("%-9s | %7llu %7llu %5llu | %5llu %s\n", NodeLabel(i),
                  static_cast<unsigned long long>(cv),
                  static_cast<unsigned long long>(sv),
                  static_cast<unsigned long long>(sum),
                  static_cast<unsigned long long>(kExpectedSum[i]),
                  ok ? "OK" : "MISMATCH");
    }

    // Full protocol run on top of the same shares: the two client elements
    // are the answers ("each zero element without zero sub element").
    ServerStore<Ring> server(ring, std::move(shares.server));
    auto client = ClientContext<Ring>::SeedOnly(ring, map, prf);
    testing::TestSession<Ring> session(&client, &server);
    auto result = session.Lookup("client", VerifyMode::kVerified).value();
    std::printf("protocol answer: %zu matches at paths", result.matches.size());
    for (const auto& mth : result.matches) std::printf(" \"%s\"", mth.path.c_str());
    std::printf("  (dead branch 'name' pruned: %zu of %zu nodes zero)\n\n",
                result.stats.zero_candidates, result.stats.total_server_nodes);
    all_ok &= result.matches.size() == 2;
  };

  run(FpCyclotomicRing::Create(5).value(),
      "Fig. 5: F_5[x]/(x^4 - 1), evaluate at x = 2 mod p = 5");
  run(ZQuotientRing::Create(ZPoly({1, 0, 1})).value(),
      "Fig. 6: Z[x]/(x^2 + 1), evaluate at x = 2 mod r(2) = 5");

  std::printf("figures 5 and 6 reproduced: %s\n", all_ok ? "YES" : "NO");
  return all_ok ? 0 : 1;
}
