// Scatter-gather scaling across server groups — the shard subsystem's
// headline claim: a query against an S-shard collection runs one shared-
// frontier walk PER SHARD, concurrently, so its latency tracks the deepest
// shard while total traffic stays that of the unsharded walk. This driver
// holds the collection fixed (D documents) and sweeps the shard count,
// reporting the deterministic protocol costs (roll-up rounds = deepest
// shard, messages = sum) and wall time at simulated per-message latency
// for sequential vs pooled shard fan-out.
//
//   shard_scaling [--json PATH]
//
// With --json it also writes the numbers in the bench/baselines entry
// schema (compare_baselines.py consumes either side). The (rounds|messages)
// entries are deterministic — CI pins them at a 0% threshold.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "shard/sharded_collection.h"
#include "xml/xml_generator.h"

namespace polysse {
namespace {

constexpr size_t kDocs = 32;
constexpr size_t kDocNodes = 30;
constexpr size_t kTagAlphabet = 8;
constexpr uint32_t kLatencyUs = 200;
const char* kQueryTag = "tag0";

XmlNode MakeDoc(uint64_t seed) {
  XmlGeneratorOptions gen;
  gen.num_nodes = kDocNodes;
  gen.tag_alphabet = kTagAlphabet;
  gen.max_fanout = 4;
  gen.seed = seed;
  return GenerateXmlTree(gen);
}

std::unique_ptr<FpShardedCollection> Build(int shards, int workers) {
  DeterministicPrf seed = DeterministicPrf::FromString("shard-scaling");
  ShardDeploy deploy;
  deploy.num_shards = shards;
  deploy.worker_threads = workers;
  auto col = FpShardedCollection::Create(seed, deploy).value();
  for (size_t d = 0; d < kDocs; ++d) {
    Status s = col->Add(static_cast<DocId>(d), MakeDoc(2000 + d));
    if (!s.ok()) {
      std::fprintf(stderr, "add failed: %s\n", s.ToString().c_str());
      std::abort();
    }
  }
  return col;
}

void AddLatency(FpShardedCollection* col) {
  FaultConfig lag;
  lag.latency_us = kLatencyUs;
  for (const ShardRange& s : col->shard_map().shards())
    col->InjectFaults(s.shard_id, 0, lag);
}

double MedianWallUs(FpShardedCollection* col) {
  // One warm-up, then median of three timed verified searches.
  (void)col->Search(kQueryTag).value();
  std::vector<double> walls;
  for (int i = 0; i < 3; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    (void)col->Search(kQueryTag).value();
    auto t1 = std::chrono::steady_clock::now();
    walls.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  std::sort(walls.begin(), walls.end());
  return walls[walls.size() / 2];
}

int Run(const std::string& json_path) {
  std::string json_entries;
  auto add_entry = [&](const std::string& name, double value) {
    if (!json_entries.empty()) json_entries += ",\n";
    char buf[160];
    std::snprintf(buf, sizeof buf, "    \"%s\": %.1f", name.c_str(), value);
    json_entries += buf;
  };

  std::printf(
      "scatter-gather //%s over a %zu-document collection, 2-party groups,\n"
      "verified mode. 'rounds' is the roll-up (deepest shard), 'messages'\n"
      "the sum across shards. Wall times re-run the search with %uus\n"
      "injected per message: 'seq' walks shards one after another, 'par'\n"
      "fans them out on a worker pool — the latency the shard layout is\n"
      "supposed to hide.\n\n",
      kQueryTag, kDocs, kLatencyUs);
  std::printf("%6s | %6s %8s | %12s %12s | %7s\n", "shards", "rounds",
              "messages", "seq ms @lat", "par ms @lat", "speedup");

  for (int shards : {1, 2, 4, 8}) {
    auto col = Build(shards, /*workers=*/8);
    auto r = col->Search(kQueryTag).value();
    const std::string suffix = "_S" + std::to_string(shards);
    add_entry("rounds" + suffix, static_cast<double>(r.stats.rounds));
    add_entry("messages" + suffix,
              static_cast<double>(r.stats.transport.messages_up));
    if (shards == 4) {
      for (const ShardQueryStats& s : r.per_shard) {
        const std::string shard_suffix =
            suffix + "_shard" + std::to_string(s.shard_id);
        add_entry("rounds" + shard_suffix,
                  static_cast<double>(s.stats.rounds));
        add_entry("messages" + shard_suffix,
                  static_cast<double>(s.stats.transport.messages_up));
      }
    }

    AddLatency(col.get());
    const double par_wall = MedianWallUs(col.get());
    auto seq = Build(shards, /*workers=*/0);
    AddLatency(seq.get());
    const double seq_wall = MedianWallUs(seq.get());
    add_entry("wall_us_seq" + suffix + "_lat" + std::to_string(kLatencyUs),
              seq_wall);
    add_entry("wall_us_par" + suffix + "_lat" + std::to_string(kLatencyUs),
              par_wall);

    std::printf("%6d | %6zu %8zu | %12.1f %12.1f | %6.1fx\n", shards,
                r.stats.rounds, r.stats.transport.messages_up,
                seq_wall / 1000.0, par_wall / 1000.0, seq_wall / par_wall);
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"shard_scaling\",\n  \"entries\": {\n%s\n"
                 "  }\n}\n",
                 json_entries.c_str());
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace polysse

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") json_path = argv[i + 1];
  }
  return polysse::Run(json_path);
}
