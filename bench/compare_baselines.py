#!/usr/bin/env python3
"""Compare a fresh benchmark run against a recorded baseline.

Usage:
  compare_baselines.py BASELINE.json CURRENT.json [--report-only]
                       [--threshold-pct 25] [--entries-regex PATTERN]

BASELINE.json is a file from bench/baselines/ (schema below). CURRENT.json
is either another baseline-schema file or a raw google-benchmark
--benchmark_format=json dump (auto-detected via its "benchmarks" key).

Baseline schema:
  {
    "bench": "ring_ops",
    "recorded": "2026-07-28",
    "host": {...informational...},
    "entries": { "<benchmark name>": <real_time in ns> }
  }

A benchmark regresses when current/baseline exceeds 1 + threshold/100
(default 25%, matching the noise floor documented in BENCH.md). Entries
present on only one side are reported but never fail the run (benchmarks
come and go; the gate is for the ones we can compare). Exit status is 1
when any comparable entry regresses, unless --report-only.

--entries-regex narrows the comparison to matching entry names. This is
how CI enforces the deterministic protocol-cost counters (rounds, message
counts) strictly while leaving noisy wall-time entries report-only.
"""

import argparse
import json
import re
import sys


def load_entries(path):
    with open(path) as f:
        data = json.load(f)
    if "benchmarks" in data:  # raw google-benchmark output
        entries = {}
        for b in data["benchmarks"]:
            if b.get("run_type") == "aggregate":
                continue
            unit = b.get("time_unit", "ns")
            scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
            entries[b["name"]] = b["real_time"] * scale
        return entries
    return dict(data["entries"])


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--report-only", action="store_true",
                    help="always exit 0; print the comparison only")
    ap.add_argument("--threshold-pct", type=float, default=25.0,
                    help="regression threshold in percent (default 25)")
    ap.add_argument("--entries-regex", default=None,
                    help="compare only entries whose name matches this "
                         "regular expression (re.search)")
    args = ap.parse_args()

    base = load_entries(args.baseline)
    cur = load_entries(args.current)
    if args.entries_regex:
        pat = re.compile(args.entries_regex)
        base = {k: v for k, v in base.items() if pat.search(k)}
        cur = {k: v for k, v in cur.items() if pat.search(k)}
        if not base:
            print(f"no baseline entries match {args.entries_regex!r}",
                  file=sys.stderr)
            return 1
    limit = 1.0 + args.threshold_pct / 100.0

    regressions = []
    width = max((len(n) for n in base), default=20)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  ratio")
    for name in sorted(base):
        if name not in cur:
            print(f"{name:<{width}}  {base[name]:>12.0f}  {'MISSING':>12}  -")
            continue
        if base[name] > 0:
            ratio = cur[name] / base[name]
        else:
            # A zero baseline (e.g. "a cache hit sends zero messages") only
            # regresses when the current run is nonzero.
            ratio = 1.0 if cur[name] == 0 else float("inf")
        flag = ""
        if ratio > limit:
            flag = f"  REGRESSION (> +{args.threshold_pct:.0f}%)"
            regressions.append((name, ratio))
        elif ratio < 1.0 / limit:
            flag = "  improved"
        print(f"{name:<{width}}  {base[name]:>12.0f}  {cur[name]:>12.0f}  "
              f"{ratio:5.2f}{flag}")
    for name in sorted(set(cur) - set(base)):
        print(f"{name:<{width}}  {'NEW':>12}  {cur[name]:>12.0f}  -")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"+{args.threshold_pct:.0f}%:", file=sys.stderr)
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
        if not args.report_only:
            return 1
        print("(report-only mode: not failing)", file=sys.stderr)
    else:
        print("\nno regressions beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
