// E2 — Figure 2: the Fig. 1 tree reduced into the two finite rings.
// Paper values: F_5[x]/(x^4-1): name = x+1, client = x^2+4x+3,
// customers = 3x^3+3x^2+3x+3. Z[x]/(x^2+1): name = x-4, client = -6x+7,
// customers = 265x+45.
#include <cstdio>
#include <string>

#include "core/poly_tree.h"
#include "ring/fp_cyclotomic_ring.h"
#include "ring/z_quotient_ring.h"
#include "xml/xml_generator.h"

int main() {
  using namespace polysse;
  std::printf("=== E2 / Figure 2: reduction into the finite rings ===\n\n");

  TagMap map = TagMap::FromExplicit(Fig1TagMapping()).value();
  XmlNode doc = MakeFig1Document();
  bool all_match = true;

  auto report = [&](const char* label, const std::string& got,
                    const std::string& expect) {
    bool ok = got == expect;
    all_match &= ok;
    std::printf("  %-9s : %-22s (paper: %-22s) %s\n", label, got.c_str(),
                expect.c_str(), ok ? "OK" : "MISMATCH");
  };

  {
    std::printf("--- Fig. 2(a): F_5[x]/(x^4 - 1) ---\n");
    FpCyclotomicRing ring = FpCyclotomicRing::Create(5).value();
    auto tree = BuildPolyTree(ring, map, doc).value();
    report("customers", ring.ToString(tree.nodes[0].poly), "3x^3 + 3x^2 + 3x + 3");
    report("client", ring.ToString(tree.nodes[1].poly), "x^2 + 4x + 3");
    report("name", ring.ToString(tree.nodes[2].poly), "x + 1");
    report("client", ring.ToString(tree.nodes[3].poly), "x^2 + 4x + 3");
    report("name", ring.ToString(tree.nodes[4].poly), "x + 1");
  }
  {
    std::printf("\n--- Fig. 2(b): Z[x]/(x^2 + 1) ---\n");
    ZQuotientRing ring = ZQuotientRing::Create(ZPoly({1, 0, 1})).value();
    auto tree = BuildPolyTree(ring, map, doc).value();
    report("customers", ring.ToString(tree.nodes[0].poly), "265x + 45");
    report("client", ring.ToString(tree.nodes[1].poly), "-6x + 7");
    report("name", ring.ToString(tree.nodes[2].poly), "x - 4");
    report("client", ring.ToString(tree.nodes[3].poly), "-6x + 7");
    report("name", ring.ToString(tree.nodes[4].poly), "x - 4");
  }

  std::printf("\nall figure-2 values reproduced: %s\n",
              all_match ? "YES" : "NO");
  return all_match ? 0 : 1;
}
