#!/usr/bin/env bash
# One-stop static-analysis gate, same sequence CI's lint job runs:
#
#   1. polysse-lint selftest — each check still catches its known-bad fixture
#   2. polysse-lint over the real tree — zero findings required
#   3. clang-tidy build of every src/ layer (skipped with a notice when
#      clang-tidy is not on PATH; CI always has it)
#
# Exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== polysse-lint selftest =="
python3 tools/lint/lint_selftest.py

echo "== polysse-lint: repository tree =="
python3 tools/lint/polysse_lint.py --root .
echo "polysse-lint: clean"

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy (curated .clang-tidy profile, warnings are errors) =="
  cmake -B build-tidy -S . \
    -DPOLYSSE_CLANG_TIDY=ON \
    -DPOLYSSE_BUILD_TESTS=OFF \
    -DPOLYSSE_BUILD_BENCHES=OFF \
    -DPOLYSSE_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build build-tidy -j"$(nproc)"
  echo "clang-tidy: clean"
else
  echo "== clang-tidy not on PATH — tidy build skipped (CI runs it) =="
fi
